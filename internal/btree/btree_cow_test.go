package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// cowBase builds a bulk-loaded tree of n sequential entries.
func cowBase(t *testing.T, n int) *Tree[uint64, int] {
	t.Helper()
	keys := make([]uint64, n)
	vals := make([]int, n)
	for i := range keys {
		keys[i] = uint64(i * 2)
		vals[i] = i
	}
	tr := New[uint64, int](DefaultOrder)
	if err := tr.BulkLoad(keys, vals, 1); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCloneCOWSharesAllNodes pins that an unmutated clone is a pure O(1)
// snapshot: every node pointer-identical with the parent.
func TestCloneCOWSharesAllNodes(t *testing.T) {
	tr := cowBase(t, 10_000)
	cl := tr.CloneCOW()
	n := tr.NodeCount()
	if cl.NodeCount() != n {
		t.Fatalf("clone has %d nodes, parent %d", cl.NodeCount(), n)
	}
	if shared := cl.SharedNodeCount(tr); shared != n {
		t.Fatalf("unmutated clone shares %d of %d nodes", shared, n)
	}
}

// TestCloneCOWPathCopying pins the path-copying bound: k point mutations
// on a clone copy at most k·height nodes, and the parent's content is
// byte-for-byte untouched.
func TestCloneCOWPathCopying(t *testing.T) {
	tr := cowBase(t, 50_000)
	before := map[uint64]int{}
	tr.Ascend(func(k uint64, v int) bool { before[k] = v; return true })

	cl := tr.CloneCOW()
	const muts = 8
	for i := 0; i < muts; i++ {
		cl.Insert(uint64(i*2+1), -i) // fresh odd keys
	}
	if cl.Len() != tr.Len()+muts {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), tr.Len()+muts)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("parent after clone mutations: %v", err)
	}

	total := cl.NodeCount()
	shared := cl.SharedNodeCount(tr)
	// Each mutation copies one root-to-leaf path (plus split fringe).
	if budget := muts * (tr.Height() + 2); total-shared > budget {
		t.Fatalf("%d point mutations copied %d nodes (height %d, budget %d)",
			muts, total-shared, tr.Height(), budget)
	}
	if shared == 0 {
		t.Fatal("mutated clone shares nothing with its parent")
	}

	// Parent content unchanged, clone diverged.
	after := map[uint64]int{}
	tr.Ascend(func(k uint64, v int) bool { after[k] = v; return true })
	if len(after) != len(before) {
		t.Fatalf("parent size changed: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("parent value for %d changed: %d -> %d", k, v, after[k])
		}
	}
	for i := 0; i < muts; i++ {
		if _, ok := tr.Get(uint64(i*2 + 1)); ok {
			t.Fatalf("clone insert %d leaked into parent", i*2+1)
		}
		if v, ok := cl.Get(uint64(i*2 + 1)); !ok || v != -i {
			t.Fatalf("clone Get(%d) = %d,%v", i*2+1, v, ok)
		}
	}
}

// TestCloneCOWDeleteAndShift exercises the other two COW mutations —
// delete with rebalancing and the MutateDescend suffix walk — against a
// reference model, checking the parent never changes.
func TestCloneCOWDeleteAndShift(t *testing.T) {
	tr := cowBase(t, 20_000)
	parentLen := tr.Len()

	cl := tr.CloneCOW()
	rng := rand.New(rand.NewSource(11))
	ref := map[uint64]int{}
	tr.Ascend(func(k uint64, v int) bool { ref[k] = v; return true })
	for i := 0; i < 2_000; i++ {
		k := uint64(rng.Intn(20_000)) * 2
		if _, ok := ref[k]; ok != cl.Delete(k) {
			t.Fatalf("clone Delete(%d) disagreed with model", k)
		}
		delete(ref, k)
	}
	// Suffix shift: bump every value >= 15000, stopping below (the COW
	// suffix-shift pattern the segment router used for splices).
	cl.MutateDescend(func(k uint64, v int) (int, bool) {
		if v < 15_000 {
			return v, false
		}
		return v + 1, true
	})
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("parent: %v", err)
	}
	if tr.Len() != parentLen {
		t.Fatalf("parent Len changed to %d", tr.Len())
	}
	if v, ok := tr.Get(2 * 19_999); !ok || v != 19_999 {
		t.Fatalf("parent tail value = %d,%v, want un-shifted 19999", v, ok)
	}
	keys := make([]uint64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		want := ref[k]
		if want >= 15_000 {
			want++
		}
		if v, ok := cl.Get(k); !ok || v != want {
			t.Fatalf("clone Get(%d) = %d,%v, want %d", k, v, ok, want)
		}
	}
	// The early-stopped shift must leave the untouched prefix shared.
	if cl.SharedNodeCount(tr) == 0 {
		t.Fatal("clone shares nothing after deletes + partial shift")
	}
}

// TestCloneCOWChain pins that clones of clones keep working: each
// generation mutates privately and earlier generations stay frozen.
func TestCloneCOWChain(t *testing.T) {
	gen0 := cowBase(t, 5_000)
	gens := []*Tree[uint64, int]{gen0}
	for g := 1; g <= 5; g++ {
		next := gens[g-1].CloneCOW()
		next.Insert(uint64(1_000_000+g), g)
		gens = append(gens, next)
	}
	for g, tr := range gens {
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		if tr.Len() != 5_000+g {
			t.Fatalf("gen %d: Len = %d", g, tr.Len())
		}
		for i := 1; i <= 5; i++ {
			_, ok := tr.Get(uint64(1_000_000 + i))
			if ok != (i <= g) {
				t.Fatalf("gen %d sees key of gen %d: %v", g, i, ok)
			}
		}
	}
}
