// Package btree implements an in-memory B+ tree.
//
// It is the organization substrate for every index in this repository, in
// the same role the STX B+ tree plays in the FITing-Tree paper: the dense
// ("full") baseline stores one entry per key in it, the fixed-page baseline
// stores one entry per page, and FITing-Tree stores one entry per
// variable-sized segment. Keeping the substrate identical across all
// competitors preserves the paper's fair-comparison methodology.
//
// The tree maps ordered numeric keys to values. Leaves are chained for
// ordered scans. Lookup, insertion (with node splits), deletion (with
// borrow/merge rebalancing), floor search (greatest key <= k, the operation
// FITing-Tree uses to route a key to its segment) and bottom-up bulk
// loading are supported.
package btree

import (
	"fmt"

	"fitingtree/internal/num"
)

// DefaultOrder is the default maximum number of keys per node. With 8-byte
// keys and pointers this keeps nodes around one or two cache lines of keys,
// mirroring the fanout regime the paper's cost model assumes.
const DefaultOrder = 16

// Tree is a B+ tree from K to V. The zero value is not usable; call New.
type Tree[K num.Key, V any] struct {
	order  int // max keys per node; nodes split when exceeding it
	root   *node[K, V]
	height int // number of levels, 1 = root is a leaf
	size   int // number of key/value pairs
}

// node is either a leaf (children == nil) or an inner node.
//
// Inner node invariant: len(children) == len(keys)+1 and subtree
// children[i] holds keys k with keys[i-1] <= k < keys[i] (boundary keys
// omitted at the ends).
type node[K num.Key, V any] struct {
	keys     []K
	vals     []V           // leaf only, parallel to keys
	children []*node[K, V] // inner only
	next     *node[K, V]   // leaf chain, ascending
	prev     *node[K, V]   // leaf chain, descending
}

func (n *node[K, V]) leaf() bool { return n.children == nil }

// New returns an empty tree with the given order (maximum keys per node).
// Orders below 3 are raised to 3 so splits always leave both halves with at
// least one key.
func New[K num.Key, V any](order int) *Tree[K, V] {
	if order < 3 {
		order = 3
	}
	return &Tree[K, V]{
		order:  order,
		root:   &node[K, V]{},
		height: 1,
	}
}

// Order returns the maximum number of keys per node.
func (t *Tree[K, V]) Order() int { return t.order }

// Len returns the number of key/value pairs stored.
func (t *Tree[K, V]) Len() int { return t.size }

// Height returns the number of levels in the tree. An empty tree has
// height 1 (the root is an empty leaf).
func (t *Tree[K, V]) Height() int { return t.height }

// search returns the index of the first key in n.keys that is > k. It is a
// hand-rolled binary search: sort.Search would cost an indirect closure
// call per probe on the descent path of every Get/Floor/Insert.
func search[K num.Key, V any](n *node[K, V], k K) int {
	keys := n.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends from the root to the leaf that would contain k.
func (t *Tree[K, V]) findLeaf(k K) *node[K, V] {
	n := t.root
	for !n.leaf() {
		n = n.children[search(n, k)]
	}
	return n
}

// Get returns the value stored for k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	n := t.findLeaf(k)
	i := search(n, k) - 1
	if i >= 0 && n.keys[i] == k {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (t *Tree[K, V]) Contains(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// Floor returns the greatest key <= k and its value. This is the routing
// operation of FITing-Tree: segments are keyed by their starting key, so
// the segment owning k is Floor(k).
func (t *Tree[K, V]) Floor(k K) (K, V, bool) {
	n := t.findLeaf(k)
	i := search(n, k) - 1
	if i < 0 {
		// All keys in this leaf are > k; the answer, if any, is the last
		// key of the previous leaf.
		if n.prev == nil || len(n.prev.keys) == 0 {
			var zk K
			var zv V
			return zk, zv, false
		}
		n = n.prev
		i = len(n.keys) - 1
	}
	return n.keys[i], n.vals[i], true
}

// Ceil returns the smallest key >= k and its value.
func (t *Tree[K, V]) Ceil(k K) (K, V, bool) {
	n := t.findLeaf(k)
	i := search(n, k)
	if i > 0 && n.keys[i-1] == k {
		return n.keys[i-1], n.vals[i-1], true
	}
	if i == len(n.keys) {
		if n.next == nil || len(n.next.keys) == 0 {
			var zk K
			var zv V
			return zk, zv, false
		}
		n = n.next
		i = 0
	}
	return n.keys[i], n.vals[i], true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.keys)-1], true
}

// Insert stores v under k, replacing any existing value. It reports whether
// a previous value was replaced.
func (t *Tree[K, V]) Insert(k K, v V) bool {
	replaced, splitKey, sibling := t.insert(t.root, k, v)
	if sibling != nil {
		newRoot := &node[K, V]{
			keys:     []K{splitKey},
			children: []*node[K, V]{t.root, sibling},
		}
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.size++
	}
	return replaced
}

// insert recursively inserts into n. If n splits, it returns the separator
// key and the new right sibling to be installed in the parent.
func (t *Tree[K, V]) insert(n *node[K, V], k K, v V) (replaced bool, splitKey K, sibling *node[K, V]) {
	if n.leaf() {
		i := search(n, k)
		if i > 0 && n.keys[i-1] == k {
			n.vals[i-1] = v
			return true, splitKey, nil
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		if len(n.keys) > t.order {
			splitKey, sibling = t.splitLeaf(n)
		}
		return false, splitKey, sibling
	}

	ci := search(n, k)
	replaced, childKey, childSibling := t.insert(n.children[ci], k, v)
	if childSibling != nil {
		n.keys = insertAt(n.keys, ci, childKey)
		n.children = insertAt(n.children, ci+1, childSibling)
		if len(n.keys) > t.order {
			splitKey, sibling = t.splitInner(n)
		}
	}
	return replaced, splitKey, sibling
}

// splitLeaf splits an over-full leaf in half and returns the first key of
// the new right sibling as the separator.
func (t *Tree[K, V]) splitLeaf(n *node[K, V]) (K, *node[K, V]) {
	mid := len(n.keys) / 2
	right := &node[K, V]{
		keys: append([]K(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
		next: n.next,
		prev: n,
	}
	if n.next != nil {
		n.next.prev = right
	}
	n.next = right
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	return right.keys[0], right
}

// splitInner splits an over-full inner node; the middle key moves up.
func (t *Tree[K, V]) splitInner(n *node[K, V]) (K, *node[K, V]) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &node[K, V]{
		keys:     append([]K(nil), n.keys[mid+1:]...),
		children: append([]*node[K, V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return up, right
}

// minKeys is the minimum number of keys a non-root node must hold.
func (t *Tree[K, V]) minKeys() int { return t.order / 2 }

// Delete removes k and reports whether it was present.
func (t *Tree[K, V]) Delete(k K) bool {
	deleted := t.remove(t.root, k)
	if deleted {
		t.size--
	}
	// Collapse the root if it became a pass-through inner node.
	for !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	return deleted
}

// remove deletes k from the subtree rooted at n and rebalances children
// that underflow.
func (t *Tree[K, V]) remove(n *node[K, V], k K) bool {
	if n.leaf() {
		i := search(n, k) - 1
		if i < 0 || n.keys[i] != k {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}

	ci := search(n, k)
	deleted := t.remove(n.children[ci], k)
	if deleted && len(n.children[ci].keys) < t.minKeys() {
		t.rebalance(n, ci)
	}
	return deleted
}

// rebalance fixes an underflowing child n.children[ci] by borrowing from a
// sibling or merging with one.
func (t *Tree[K, V]) rebalance(n *node[K, V], ci int) {
	if len(n.children) < 2 {
		// No sibling to borrow from or merge with; the root-collapse pass
		// in Delete shortens single-child spines.
		return
	}
	child := n.children[ci]

	// Borrow from the left sibling if it has spare keys.
	if ci > 0 {
		left := n.children[ci-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[ci-1] = child.keys[0]
			} else {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, n.keys[ci-1])
				n.keys[ci-1] = left.keys[last]
				child.children = insertAt(child.children, 0, left.children[last+1])
				left.keys = left.keys[:last]
				left.children = left.children[:last+1]
			}
			return
		}
	}

	// Borrow from the right sibling if it has spare keys.
	if ci < len(n.children)-1 {
		right := n.children[ci+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				child.children = append(child.children, right.children[0])
				right.keys = removeAt(right.keys, 0)
				right.children = removeAt(right.children, 0)
			}
			return
		}
	}

	// No sibling can lend: merge with a neighbor.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge folds n.children[i+1] into n.children[i] and drops separator i.
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		}
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = removeAt(n.keys, i)
	n.children = removeAt(n.children, i+1)
}

// Ascend calls fn for every key/value pair in ascending key order, stopping
// early if fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// MutateDescend visits every key/value pair in descending key order,
// replacing the stored value with the one fn returns, and stops after the
// first pair for which fn reports false (that pair's returned value is
// still stored). The FITing-Tree segment router uses it to renumber a
// suffix of page positions after a splice without one descent per entry.
func (t *Tree[K, V]) MutateDescend(fn func(k K, v V) (V, bool)) {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	for n != nil {
		for i := len(n.keys) - 1; i >= 0; i-- {
			nv, cont := fn(n.keys[i], n.vals[i])
			n.vals[i] = nv
			if !cont {
				return
			}
		}
		n = n.prev
	}
}

// AscendRange calls fn for every pair with lo <= key <= hi in ascending
// order, stopping early if fn returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	n := t.findLeaf(lo)
	// First index with key >= lo; search() finds the first > lo-ε bound,
	// so step back over an exact match.
	i := search(n, lo)
	if i > 0 && n.keys[i-1] == lo {
		i--
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// BulkLoad builds the tree bottom-up from sorted, distinct keys with the
// given leaf fill factor in (0,1]. It replaces the tree's contents. Bulk
// loading an index after the one-pass segmentation step is how FITing-Tree
// is constructed initially (Section 3 of the paper).
func (t *Tree[K, V]) BulkLoad(keys []K, vals []V, fill float64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("btree: BulkLoad: %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("btree: BulkLoad: keys not strictly ascending at index %d", i)
		}
	}
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	perLeaf := int(float64(t.order) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}

	t.root = &node[K, V]{}
	t.height = 1
	t.size = len(keys)
	if len(keys) == 0 {
		return nil
	}

	// Build the leaf level.
	var leaves []*node[K, V]
	for at := 0; at < len(keys); at += perLeaf {
		end := num.MinInt(at+perLeaf, len(keys))
		leaf := &node[K, V]{
			keys: append([]K(nil), keys[at:end]...),
			vals: append([]V(nil), vals[at:end]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = leaf
			leaf.prev = leaves[len(leaves)-1]
		}
		leaves = append(leaves, leaf)
	}

	// Build inner levels until a single root remains.
	level := leaves
	height := 1
	perInner := num.MaxInt(2, int(float64(t.order)*fill))
	for len(level) > 1 {
		var parents []*node[K, V]
		for at := 0; at < len(level); {
			end := num.MinInt(at+perInner, len(level))
			// Never leave a trailing singleton group: an inner node with a
			// single child would break rebalancing during later deletes.
			if len(level)-end == 1 {
				if end-at >= 3 {
					end--
				} else {
					end++
				}
			}
			group := level[at:end]
			p := &node[K, V]{children: append([]*node[K, V](nil), group...)}
			for _, c := range group[1:] {
				p.keys = append(p.keys, firstKey(c))
			}
			parents = append(parents, p)
			at = end
		}
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	return nil
}

// firstKey returns the smallest key in the subtree rooted at n.
func firstKey[K num.Key, V any](n *node[K, V]) K {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

// Stats describes the shape and memory footprint of a tree.
type Stats struct {
	Len        int // number of key/value pairs
	Height     int // levels, 1 = root leaf
	InnerNodes int
	LeafNodes  int
	// SizeBytes estimates the index footprint using the paper's accounting:
	// 8 bytes per key and 8 bytes per pointer/value slot, both in leaves
	// and inner nodes, ignoring allocator slack.
	SizeBytes int64
}

// Stats traverses the tree and returns shape and size statistics.
func (t *Tree[K, V]) Stats() Stats {
	s := Stats{Len: t.size, Height: t.height}
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n.leaf() {
			s.LeafNodes++
			s.SizeBytes += int64(len(n.keys)) * 16 // key + value/pointer
			return
		}
		s.InnerNodes++
		s.SizeBytes += int64(len(n.keys))*8 + int64(len(n.children))*8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return s
}

// CheckInvariants validates structural invariants and returns an error
// describing the first violation. It is exercised heavily by tests and is
// exported so property tests in other packages can call it after driving
// the tree through random workloads.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	var walk func(n *node[K, V], depth int, isRoot bool) (int, error)
	walk = func(n *node[K, V], depth int, isRoot bool) (int, error) {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] <= n.keys[i-1] {
				return 0, fmt.Errorf("btree: node keys out of order at depth %d", depth)
			}
		}
		if n.leaf() {
			if len(n.keys) != len(n.vals) {
				return 0, fmt.Errorf("btree: leaf keys/vals length mismatch")
			}
			// Bulk loading may legally leave a tail leaf below the
			// order/2 minimum that insert/delete maintain, so only an
			// empty non-root leaf is a violation.
			if !isRoot && len(n.keys) == 0 {
				return 0, fmt.Errorf("btree: empty non-root leaf")
			}
			for i := range n.keys {
				if prev != nil && n.keys[i] <= *prev {
					return 0, fmt.Errorf("btree: global key order violated")
				}
				k := n.keys[i]
				prev = &k
				count++
			}
			return depth, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("btree: inner node has %d children for %d keys", len(n.children), len(n.keys))
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			// Bulk-loaded trees may have a slim spine; only enforce a
			// minimum of one child.
			if len(n.children) < 1 {
				return 0, fmt.Errorf("btree: inner node with no children")
			}
		}
		leafDepth := -1
		for _, c := range n.children {
			d, err := walk(c, depth+1, false)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return 0, fmt.Errorf("btree: leaves at different depths (%d vs %d)", d, leafDepth)
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, 1, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size counter %d but %d keys found", t.size, count)
	}
	return nil
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeAt removes the element at index i, shifting the tail left.
func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
