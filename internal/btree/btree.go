// Package btree implements an in-memory B+ tree.
//
// It is the organization substrate for every index in this repository, in
// the same role the STX B+ tree plays in the FITing-Tree paper: the dense
// ("full") baseline stores one entry per key in it, the fixed-page baseline
// stores one entry per page, and FITing-Tree stores one entry per
// variable-sized segment. Keeping the substrate identical across all
// competitors preserves the paper's fair-comparison methodology.
//
// The tree maps ordered numeric keys to values. Lookup, insertion (with
// node splits), deletion (with borrow/merge rebalancing), floor search
// (greatest key <= k, the operation FITing-Tree uses to route a key to its
// segment) and bottom-up bulk loading are supported.
//
// Nodes carry no sibling links — leaves are reached and iterated purely by
// descent — so a node is a pure value that can be shared structurally
// between tree versions, in the manner of the copy-on-write B-trees of the
// LMDB lineage. CloneCOW exploits that: it snapshots a tree in O(1), and
// every mutating operation copies the nodes on its descent path the first
// time it touches a node the version does not own (path copying), leaving
// all untouched nodes shared. The FITing-Tree segment router uses this to
// publish a flushed tree whose router shares all but O(dirty · height)
// nodes with its predecessor.
package btree

import (
	"fmt"
	"sync/atomic"

	"fitingtree/internal/num"
)

// DefaultOrder is the default maximum number of keys per node. With 8-byte
// keys and pointers this keeps nodes around one or two cache lines of keys,
// mirroring the fanout regime the paper's cost model assumes.
const DefaultOrder = 16

// ownerSeq issues process-unique version tokens (see Tree.owner).
var ownerSeq atomic.Uint64

// Tree is a B+ tree from K to V. The zero value is not usable; call New.
type Tree[K num.Key, V any] struct {
	order  int // max keys per node; nodes split when exceeding it
	root   *node[K, V]
	height int // number of levels, 1 = root is a leaf
	size   int // number of key/value pairs

	// owner is the version token stamped on every node this tree allocates.
	// A mutation may write to a node in place only when the node's stamp
	// matches; any other node is shared with another version (see CloneCOW)
	// and is copied first.
	owner uint64
}

// node is either a leaf (children == nil) or an inner node.
//
// Inner node invariant: len(children) == len(keys)+1 and subtree
// children[i] holds keys k with keys[i-1] <= k < keys[i] (boundary keys
// omitted at the ends).
type node[K num.Key, V any] struct {
	owner    uint64 // version token of the tree that allocated this node
	keys     []K
	vals     []V           // leaf only, parallel to keys
	children []*node[K, V] // inner only
}

func (n *node[K, V]) leaf() bool { return n.children == nil }

// New returns an empty tree with the given order (maximum keys per node).
// Orders below 3 are raised to 3 so splits always leave both halves with at
// least one key.
func New[K num.Key, V any](order int) *Tree[K, V] {
	if order < 3 {
		order = 3
	}
	t := &Tree[K, V]{order: order, height: 1, owner: ownerSeq.Add(1)}
	t.root = &node[K, V]{owner: t.owner}
	return t
}

// CloneCOW returns a copy-on-write snapshot of the tree in O(1): the clone
// shares every node with the receiver. The clone carries a fresh version
// token, so its mutations copy shared nodes on the way down (path copying)
// and never write into the receiver's structure — CloneCOW itself does not
// modify the receiver either, so it is safe to call while other goroutines
// read the receiver. The receiver, however, must not be mutated after
// cloning: its own token still matches the shared nodes, so an in-place
// write through it would leak into the clone. This publication-style
// contract (old version frozen, new version mutated then published)
// mirrors the page-sharing rule of the FITing-Tree COW flush.
func (t *Tree[K, V]) CloneCOW() *Tree[K, V] {
	return &Tree[K, V]{
		order:  t.order,
		root:   t.root,
		height: t.height,
		size:   t.size,
		owner:  ownerSeq.Add(1),
	}
}

// ensureOwned returns n if this tree version may mutate it in place, or a
// fresh copy stamped with the tree's token otherwise. Copies allocate new
// key/value/children slices, so the original's backing arrays are never
// aliased by a mutable node.
func (t *Tree[K, V]) ensureOwned(n *node[K, V]) *node[K, V] {
	if n.owner == t.owner {
		return n
	}
	c := &node[K, V]{owner: t.owner, keys: append([]K(nil), n.keys...)}
	if n.leaf() {
		c.vals = append([]V(nil), n.vals...)
	} else {
		c.children = append([]*node[K, V](nil), n.children...)
	}
	return c
}

// ownChild makes child ci of n mutable and installs the (possibly copied)
// node back into n, which must already be owned.
func (t *Tree[K, V]) ownChild(n *node[K, V], ci int) *node[K, V] {
	c := t.ensureOwned(n.children[ci])
	n.children[ci] = c
	return c
}

// NodeCount returns the number of nodes (inner and leaf) in the tree.
func (t *Tree[K, V]) NodeCount() int {
	count := 0
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		count++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return count
}

// SharedNodeCount reports how many of t's nodes are pointer-identical to a
// node of o — the structural-sharing diagnostic for CloneCOW versions.
// Tests use it to pin that a mutated clone still shares all but the copied
// descent paths with its parent.
func (t *Tree[K, V]) SharedNodeCount(o *Tree[K, V]) int {
	theirs := map[*node[K, V]]bool{}
	var collect func(n *node[K, V])
	collect = func(n *node[K, V]) {
		theirs[n] = true
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(o.root)
	shared := 0
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if theirs[n] {
			shared++
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return shared
}

// Order returns the maximum number of keys per node.
func (t *Tree[K, V]) Order() int { return t.order }

// Len returns the number of key/value pairs stored.
func (t *Tree[K, V]) Len() int { return t.size }

// Height returns the number of levels in the tree. An empty tree has
// height 1 (the root is an empty leaf).
func (t *Tree[K, V]) Height() int { return t.height }

// search returns the index of the first key in n.keys that is > k. It is a
// hand-rolled binary search: sort.Search would cost an indirect closure
// call per probe on the descent path of every Get/Floor/Insert.
func search[K num.Key, V any](n *node[K, V], k K) int {
	keys := n.keys
	if ks, isStr := any(keys).([]string); isStr {
		return searchString(ks, any(k).(string))
	}
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchString is search for string keys. Each probe compares 8-byte
// big-endian prefixes first (weakly monotone, so an unequal prefix pair
// decides the order) and pays the full byte-wise comparison only on a
// prefix tie — ordered-bytes codec keys resolve almost every probe with
// one integer compare instead of a runtime string-compare call.
func searchString(keys []string, k string) int {
	kp := num.StringPrefix(k)
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		mp := num.StringPrefix(keys[mid])
		if mp < kp || (mp == kp && keys[mid] <= k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends from the root to the leaf that would contain k.
func (t *Tree[K, V]) findLeaf(k K) *node[K, V] {
	n := t.root
	for !n.leaf() {
		n = n.children[search(n, k)]
	}
	return n
}

// Get returns the value stored for k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	n := t.findLeaf(k)
	i := search(n, k) - 1
	if i >= 0 && n.keys[i] == k {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (t *Tree[K, V]) Contains(k K) bool {
	_, ok := t.Get(k)
	return ok
}

// Floor returns the greatest key <= k and its value. This is the routing
// operation of FITing-Tree: segments are keyed by their starting key, so
// the segment owning k is Floor(k). Leaves carry no sibling links (they
// must stay shareable between COW versions), so the descent remembers the
// nearest subtree entirely left of the path; when the descent leaf has no
// key <= k the answer is that subtree's maximum.
func (t *Tree[K, V]) Floor(k K) (K, V, bool) {
	n := t.root
	var left *node[K, V] // root of the nearest subtree with keys < the path
	for !n.leaf() {
		i := search(n, k)
		if i > 0 {
			left = n.children[i-1]
		}
		n = n.children[i]
	}
	if i := search(n, k) - 1; i >= 0 {
		return n.keys[i], n.vals[i], true
	}
	if left == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	for !left.leaf() {
		left = left.children[len(left.children)-1]
	}
	// A non-root leaf is never empty, and a subtree hanging off an inner
	// node is never rooted at the tree root.
	last := len(left.keys) - 1
	return left.keys[last], left.vals[last], true
}

// FloorWithNext is Floor extended with the key of the entry immediately
// after the floor (the floor's in-tree successor), when one exists. The
// successor comes from the same descent — the floor's right neighbor in
// its leaf, or the minimum of the nearest right subtree — so callers that
// need a validity range [floor, next) for caching a descent (the
// FITing-Tree batch lookup path) pay one search, not two.
func (t *Tree[K, V]) FloorWithNext(k K) (fk K, fv V, nk K, hasNext, ok bool) {
	n := t.root
	var left, right *node[K, V] // nearest subtrees fully left/right of the path
	for !n.leaf() {
		i := search(n, k)
		if i > 0 {
			left = n.children[i-1]
		}
		if i < len(n.children)-1 {
			right = n.children[i+1]
		}
		n = n.children[i]
	}
	succFrom := func(leaf *node[K, V], i int) (K, bool) {
		if i < len(leaf.keys) {
			return leaf.keys[i], true
		}
		if right == nil {
			var zk K
			return zk, false
		}
		for !right.leaf() {
			right = right.children[0]
		}
		return right.keys[0], true
	}
	if i := search(n, k) - 1; i >= 0 {
		nk, hasNext = succFrom(n, i+1)
		return n.keys[i], n.vals[i], nk, hasNext, true
	}
	// No key <= k in the descent leaf: the floor is the maximum of the
	// nearest left subtree, and the successor is this leaf's first key.
	nk, hasNext = succFrom(n, 0)
	if left == nil {
		var zk K
		var zv V
		return zk, zv, nk, hasNext, false
	}
	for !left.leaf() {
		left = left.children[len(left.children)-1]
	}
	last := len(left.keys) - 1
	return left.keys[last], left.vals[last], nk, hasNext, true
}

// Ceil returns the smallest key >= k and its value. The mirror image of
// Floor: the descent remembers the nearest subtree entirely right of the
// path.
func (t *Tree[K, V]) Ceil(k K) (K, V, bool) {
	n := t.root
	var right *node[K, V] // root of the nearest subtree with keys > the path
	for !n.leaf() {
		i := search(n, k)
		if i < len(n.children)-1 {
			right = n.children[i+1]
		}
		n = n.children[i]
	}
	i := search(n, k)
	if i > 0 && n.keys[i-1] == k {
		return n.keys[i-1], n.vals[i-1], true
	}
	if i < len(n.keys) {
		return n.keys[i], n.vals[i], true
	}
	if right == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	for !right.leaf() {
		right = right.children[0]
	}
	return right.keys[0], right.vals[0], true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.keys)-1], true
}

// Insert stores v under k, replacing any existing value. It reports whether
// a previous value was replaced.
func (t *Tree[K, V]) Insert(k K, v V) bool {
	t.root = t.ensureOwned(t.root)
	replaced, splitKey, sibling := t.insert(t.root, k, v)
	if sibling != nil {
		newRoot := &node[K, V]{
			owner:    t.owner,
			keys:     []K{splitKey},
			children: []*node[K, V]{t.root, sibling},
		}
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.size++
	}
	return replaced
}

// insert recursively inserts into n, which the caller has made owned. If n
// splits, it returns the separator key and the new right sibling to be
// installed in the parent.
func (t *Tree[K, V]) insert(n *node[K, V], k K, v V) (replaced bool, splitKey K, sibling *node[K, V]) {
	if n.leaf() {
		i := search(n, k)
		if i > 0 && n.keys[i-1] == k {
			n.vals[i-1] = v
			return true, splitKey, nil
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		if len(n.keys) > t.order {
			splitKey, sibling = t.splitLeaf(n)
		}
		return false, splitKey, sibling
	}

	ci := search(n, k)
	replaced, childKey, childSibling := t.insert(t.ownChild(n, ci), k, v)
	if childSibling != nil {
		n.keys = insertAt(n.keys, ci, childKey)
		n.children = insertAt(n.children, ci+1, childSibling)
		if len(n.keys) > t.order {
			splitKey, sibling = t.splitInner(n)
		}
	}
	return replaced, splitKey, sibling
}

// splitLeaf splits an over-full leaf in half and returns the first key of
// the new right sibling as the separator.
func (t *Tree[K, V]) splitLeaf(n *node[K, V]) (K, *node[K, V]) {
	mid := len(n.keys) / 2
	right := &node[K, V]{
		owner: t.owner,
		keys:  append([]K(nil), n.keys[mid:]...),
		vals:  append([]V(nil), n.vals[mid:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	return right.keys[0], right
}

// splitInner splits an over-full inner node; the middle key moves up.
func (t *Tree[K, V]) splitInner(n *node[K, V]) (K, *node[K, V]) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &node[K, V]{
		owner:    t.owner,
		keys:     append([]K(nil), n.keys[mid+1:]...),
		children: append([]*node[K, V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return up, right
}

// minKeys is the minimum number of keys a non-root node must hold.
func (t *Tree[K, V]) minKeys() int { return t.order / 2 }

// Delete removes k and reports whether it was present.
func (t *Tree[K, V]) Delete(k K) bool {
	t.root = t.ensureOwned(t.root)
	deleted := t.remove(t.root, k)
	if deleted {
		t.size--
	}
	// Collapse the root if it became a pass-through inner node.
	for !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.ensureOwned(t.root.children[0])
		t.height--
	}
	return deleted
}

// remove deletes k from the subtree rooted at n (owned by the caller) and
// rebalances children that underflow.
func (t *Tree[K, V]) remove(n *node[K, V], k K) bool {
	if n.leaf() {
		i := search(n, k) - 1
		if i < 0 || n.keys[i] != k {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}

	ci := search(n, k)
	child := t.ownChild(n, ci)
	deleted := t.remove(child, k)
	if deleted && len(child.keys) < t.minKeys() {
		t.rebalance(n, ci)
	}
	return deleted
}

// rebalance fixes an underflowing child n.children[ci] by borrowing from a
// sibling or merging with one. n and the underflowing child are owned; the
// sibling that lends or absorbs is made owned before it is touched.
func (t *Tree[K, V]) rebalance(n *node[K, V], ci int) {
	if len(n.children) < 2 {
		// No sibling to borrow from or merge with; the root-collapse pass
		// in Delete shortens single-child spines.
		return
	}
	child := n.children[ci]

	// Borrow from the left sibling if it has spare keys.
	if ci > 0 {
		if left := n.children[ci-1]; len(left.keys) > t.minKeys() {
			left = t.ownChild(n, ci-1)
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[ci-1] = child.keys[0]
			} else {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, n.keys[ci-1])
				n.keys[ci-1] = left.keys[last]
				child.children = insertAt(child.children, 0, left.children[last+1])
				left.keys = left.keys[:last]
				left.children = left.children[:last+1]
			}
			return
		}
	}

	// Borrow from the right sibling if it has spare keys.
	if ci < len(n.children)-1 {
		if right := n.children[ci+1]; len(right.keys) > t.minKeys() {
			right = t.ownChild(n, ci+1)
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				child.children = append(child.children, right.children[0])
				right.keys = removeAt(right.keys, 0)
				right.children = removeAt(right.children, 0)
			}
			return
		}
	}

	// No sibling can lend: merge with a neighbor.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge folds n.children[i+1] into n.children[i] and drops separator i.
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	left := t.ownChild(n, i)
	right := n.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = removeAt(n.keys, i)
	n.children = removeAt(n.children, i+1)
}

// Ascend calls fn for every key/value pair in ascending key order, stopping
// early if fn returns false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	t.ascend(t.root, fn)
}

// ascend walks the subtree at n left to right; it reports false when fn
// requested a stop.
func (t *Tree[K, V]) ascend(n *node[K, V], fn func(k K, v V) bool) bool {
	if n.leaf() {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.ascend(c, fn) {
			return false
		}
	}
	return true
}

// MutateDescend visits every key/value pair in descending key order,
// replacing the stored value with the one fn returns, and stops after the
// first pair for which fn reports false (that pair's returned value is
// still stored). Visited nodes are copied if another version shares them
// (the COW suffix-shift): an early stop leaves every subtree left of the
// stop point untouched and shared.
func (t *Tree[K, V]) MutateDescend(fn func(k K, v V) (V, bool)) {
	t.root = t.ensureOwned(t.root)
	t.mutateDescend(t.root, fn)
}

// mutateDescend walks the owned subtree at n right to left; it reports
// false when fn requested a stop.
func (t *Tree[K, V]) mutateDescend(n *node[K, V], fn func(k K, v V) (V, bool)) bool {
	if n.leaf() {
		for i := len(n.keys) - 1; i >= 0; i-- {
			nv, cont := fn(n.keys[i], n.vals[i])
			n.vals[i] = nv
			if !cont {
				return false
			}
		}
		return true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		if !t.mutateDescend(t.ownChild(n, i), fn) {
			return false
		}
	}
	return true
}

// AscendRange calls fn for every pair with lo <= key <= hi in ascending
// order, stopping early if fn returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	if hi < lo {
		return
	}
	t.ascendRange(t.root, lo, hi, fn)
}

// ascendRange walks the subtree at n left to right over [lo, hi]; it
// reports false once the walk is over (early stop or keys past hi).
func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(k K, v V) bool) bool {
	if n.leaf() {
		i := search(n, lo)
		// search finds the first key > lo; step back over an exact match.
		if i > 0 && n.keys[i-1] == lo {
			i--
		}
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i := search(n, lo); i < len(n.children); i++ {
		// children[i] holds keys >= keys[i-1]; once that bound passes hi
		// nothing further can match.
		if i > 0 && n.keys[i-1] > hi {
			return false
		}
		if !t.ascendRange(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// BulkLoad builds the tree bottom-up from sorted, distinct keys with the
// given leaf fill factor in (0,1]. It replaces the tree's contents. Bulk
// loading an index after the one-pass segmentation step is how FITing-Tree
// is constructed initially (Section 3 of the paper).
func (t *Tree[K, V]) BulkLoad(keys []K, vals []V, fill float64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("btree: BulkLoad: %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("btree: BulkLoad: keys not strictly ascending at index %d", i)
		}
	}
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	perLeaf := int(float64(t.order) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}

	t.root = &node[K, V]{owner: t.owner}
	t.height = 1
	t.size = len(keys)
	if len(keys) == 0 {
		return nil
	}

	// Build the leaf level.
	var leaves []*node[K, V]
	for at := 0; at < len(keys); at += perLeaf {
		end := num.MinInt(at+perLeaf, len(keys))
		leaves = append(leaves, &node[K, V]{
			owner: t.owner,
			keys:  append([]K(nil), keys[at:end]...),
			vals:  append([]V(nil), vals[at:end]...),
		})
	}

	// Build inner levels until a single root remains.
	level := leaves
	height := 1
	perInner := num.MaxInt(2, int(float64(t.order)*fill))
	for len(level) > 1 {
		var parents []*node[K, V]
		for at := 0; at < len(level); {
			end := num.MinInt(at+perInner, len(level))
			// Never leave a trailing singleton group: an inner node with a
			// single child would break rebalancing during later deletes.
			if len(level)-end == 1 {
				if end-at >= 3 {
					end--
				} else {
					end++
				}
			}
			group := level[at:end]
			p := &node[K, V]{owner: t.owner, children: append([]*node[K, V](nil), group...)}
			for _, c := range group[1:] {
				p.keys = append(p.keys, firstKey(c))
			}
			parents = append(parents, p)
			at = end
		}
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	return nil
}

// firstKey returns the smallest key in the subtree rooted at n.
func firstKey[K num.Key, V any](n *node[K, V]) K {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

// Stats describes the shape and memory footprint of a tree.
type Stats struct {
	Len        int // number of key/value pairs
	Height     int // levels, 1 = root leaf
	InnerNodes int
	LeafNodes  int
	// SizeBytes estimates the index footprint using the paper's accounting:
	// 8 bytes per key and 8 bytes per pointer/value slot, both in leaves
	// and inner nodes, ignoring allocator slack.
	SizeBytes int64
}

// Stats traverses the tree and returns shape and size statistics.
func (t *Tree[K, V]) Stats() Stats {
	s := Stats{Len: t.size, Height: t.height}
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n.leaf() {
			s.LeafNodes++
			s.SizeBytes += int64(len(n.keys)) * 16 // key + value/pointer
			return
		}
		s.InnerNodes++
		s.SizeBytes += int64(len(n.keys))*8 + int64(len(n.children))*8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return s
}

// CheckInvariants validates structural invariants and returns an error
// describing the first violation. It is exercised heavily by tests and is
// exported so property tests in other packages can call it after driving
// the tree through random workloads.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	var walk func(n *node[K, V], depth int, isRoot bool) (int, error)
	walk = func(n *node[K, V], depth int, isRoot bool) (int, error) {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] <= n.keys[i-1] {
				return 0, fmt.Errorf("btree: node keys out of order at depth %d", depth)
			}
		}
		if n.leaf() {
			if len(n.keys) != len(n.vals) {
				return 0, fmt.Errorf("btree: leaf keys/vals length mismatch")
			}
			// Bulk loading may legally leave a tail leaf below the
			// order/2 minimum that insert/delete maintain, so only an
			// empty non-root leaf is a violation.
			if !isRoot && len(n.keys) == 0 {
				return 0, fmt.Errorf("btree: empty non-root leaf")
			}
			for i := range n.keys {
				if prev != nil && n.keys[i] <= *prev {
					return 0, fmt.Errorf("btree: global key order violated")
				}
				k := n.keys[i]
				prev = &k
				count++
			}
			return depth, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("btree: inner node has %d children for %d keys", len(n.children), len(n.keys))
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			// Bulk-loaded trees may have a slim spine; only enforce a
			// minimum of one child.
			if len(n.children) < 1 {
				return 0, fmt.Errorf("btree: inner node with no children")
			}
		}
		leafDepth := -1
		for _, c := range n.children {
			d, err := walk(c, depth+1, false)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return 0, fmt.Errorf("btree: leaves at different depths (%d vs %d)", d, leafDepth)
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, 1, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size counter %d but %d keys found", t.size, count)
	}
	return nil
}

// insertAt inserts v at index i, shifting the tail right.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeAt removes the element at index i, shifting the tail left.
func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
