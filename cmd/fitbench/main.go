// Command fitbench reproduces the FITing-Tree paper's evaluation (Section
// 7): Table 1 and Figures 1, 6, 7, 8, 9, 10, 11, 12, and 13. Each
// experiment prints the rows or series the paper reports; EXPERIMENTS.md
// in the repository root records a captured run next to the paper's
// numbers.
//
// Usage:
//
//	fitbench -exp all                 # everything, paper order
//	fitbench -exp fig6 -n 2000000     # one experiment at a larger scale
//	fitbench -exp table1 -quick       # reduced sweeps
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fitingtree/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig1, fig6..fig13, extio, extrange, extablation, parallel, shardwrite, flushstall, flushpub, recovery, shardrecovery, burst, strings, adaptive, all")
		n        = flag.Int("n", 1_000_000, "base dataset size")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		probes   = flag.Int("probes", 100_000, "lookup probes per measurement")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast run")
		jsonPath = flag.String("json", "", "write machine-readable results of -exp parallel or shardwrite to this file; with -exp all, parallel goes here and shardwrite to <name>_shardwrite.<ext>")
	)
	flag.Parse()

	cfg := bench.Config{
		N:          *n,
		Seed:       *seed,
		Probes:     *probes,
		MinMeasure: 100 * time.Millisecond,
		Quick:      *quick,
	}

	runners := map[string]func(){
		"table1":      func() { bench.Table1(os.Stdout, cfg) },
		"fig1":        func() { bench.Fig1(os.Stdout, cfg) },
		"fig6":        func() { bench.Fig6(os.Stdout, cfg) },
		"fig7":        func() { bench.Fig7(os.Stdout, cfg) },
		"fig8":        func() { bench.Fig8(os.Stdout, cfg) },
		"fig9":        func() { bench.Fig9(os.Stdout, cfg) },
		"fig10":       func() { bench.Fig10(os.Stdout, cfg) },
		"fig11":       func() { bench.Fig11(os.Stdout, cfg) },
		"fig12":       func() { bench.Fig12(os.Stdout, cfg) },
		"fig13":       func() { bench.Fig13(os.Stdout, cfg) },
		"extio":       func() { bench.ExtIO(os.Stdout, cfg) },
		"extrange":    func() { bench.ExtRange(os.Stdout, cfg) },
		"extablation": func() { bench.ExtAblation(os.Stdout, cfg) },
		"parallel": func() {
			writeParallelJSON(*jsonPath, cfg, bench.ExtParallel(os.Stdout, cfg))
		},
		"shardwrite": func() {
			writeShardWriteJSON(*jsonPath, cfg, bench.ExtShardWrite(os.Stdout, cfg))
		},
		"flushstall": func() {
			writeFlushStallJSON(*jsonPath, cfg, bench.ExtFlushStall(os.Stdout, cfg))
		},
		"flushpub": func() {
			writeFlushPubJSON(*jsonPath, cfg, bench.ExtFlushPub(os.Stdout, cfg))
		},
		"recovery": func() {
			writeRecoveryJSON(*jsonPath, cfg, bench.ExtRecovery(os.Stdout, cfg))
		},
		"shardrecovery": func() {
			writeShardRecoveryJSON(*jsonPath, cfg, bench.ExtShardRecovery(os.Stdout, cfg))
		},
		"burst": func() {
			writeBurstJSON(*jsonPath, cfg, bench.ExtBurst(os.Stdout, cfg))
		},
		"strings": func() {
			writeStringsJSON(*jsonPath, cfg, bench.ExtStrings(os.Stdout, cfg))
		},
		"adaptive": func() {
			writeAdaptiveJSON(*jsonPath, cfg, bench.ExtAdaptive(os.Stdout, cfg))
		},
		"all": func() {
			bench.AllButParallel(os.Stdout, cfg)
			writeShardWriteJSON(suffixedPath(*jsonPath, "_shardwrite"), cfg, bench.ExtShardWrite(os.Stdout, cfg))
			writeFlushStallJSON(suffixedPath(*jsonPath, "_flushstall"), cfg, bench.ExtFlushStall(os.Stdout, cfg))
			writeFlushPubJSON(suffixedPath(*jsonPath, "_flushpub"), cfg, bench.ExtFlushPub(os.Stdout, cfg))
			writeRecoveryJSON(suffixedPath(*jsonPath, "_recovery"), cfg, bench.ExtRecovery(os.Stdout, cfg))
			writeShardRecoveryJSON(suffixedPath(*jsonPath, "_shardrecovery"), cfg, bench.ExtShardRecovery(os.Stdout, cfg))
			writeBurstJSON(suffixedPath(*jsonPath, "_burst"), cfg, bench.ExtBurst(os.Stdout, cfg))
			writeStringsJSON(suffixedPath(*jsonPath, "_strings"), cfg, bench.ExtStrings(os.Stdout, cfg))
			writeAdaptiveJSON(suffixedPath(*jsonPath, "_adaptive"), cfg, bench.ExtAdaptive(os.Stdout, cfg))
			writeParallelJSON(*jsonPath, cfg, bench.ExtParallel(os.Stdout, cfg))
		},
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "fitbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	jsonExps := map[string]bool{"parallel": true, "shardwrite": true, "flushstall": true, "flushpub": true, "recovery": true, "shardrecovery": true, "burst": true, "strings": true, "adaptive": true, "all": true}
	if *jsonPath != "" && !jsonExps[*exp] {
		fmt.Fprintf(os.Stderr, "fitbench: -json applies only to -exp parallel, shardwrite, flushstall, flushpub, recovery, shardrecovery, burst, strings, adaptive, or all\n")
		os.Exit(2)
	}
	start := time.Now()
	run()
	fmt.Printf("(%s in %s, n=%d, seed=%d)\n", *exp, time.Since(start).Round(time.Millisecond), *n, *seed)
}

// writeParallelJSON writes the parallel experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeParallelJSON(path string, cfg bench.Config, points []bench.ParallelPoint) {
	writeJSON(path, bench.ParallelReport{
		Experiment: "parallel",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeShardWriteJSON writes the shardwrite experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeShardWriteJSON(path string, cfg bench.Config, points []bench.ShardWritePoint) {
	writeJSON(path, bench.ShardWriteReport{
		Experiment: "shardwrite",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeFlushStallJSON writes the flushstall experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeFlushStallJSON(path string, cfg bench.Config, points []bench.FlushStallPoint) {
	flushEvery := 0
	if len(points) > 0 {
		flushEvery = points[0].FlushEvery
	}
	writeJSON(path, bench.FlushStallReport{
		Experiment: "flushstall",
		N:          cfg.N,
		FlushEvery: flushEvery,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeFlushPubJSON writes the flushpub experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeFlushPubJSON(path string, cfg bench.Config, points []bench.FlushPubPoint) {
	writeJSON(path, bench.FlushPubReport{
		Experiment: "flushpub",
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeRecoveryJSON writes the recovery experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeRecoveryJSON(path string, cfg bench.Config, points []bench.RecoveryPoint) {
	writeJSON(path, bench.RecoveryReport{
		Experiment: "recovery",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeShardRecoveryJSON writes the shardrecovery experiment's
// machine-readable report to path; it is a no-op when path is empty.
func writeShardRecoveryJSON(path string, cfg bench.Config, points []bench.ShardRecoveryPoint) {
	writeJSON(path, bench.ShardRecoveryReport{
		Experiment: "shardrecovery",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeBurstJSON writes the burst experiment's machine-readable report to
// path; it is a no-op when path is empty.
func writeBurstJSON(path string, cfg bench.Config, points []bench.BurstPoint) {
	flushEvery := 0
	if len(points) > 0 {
		flushEvery = points[0].FlushEvery
	}
	writeJSON(path, bench.BurstReport{
		Experiment: "burst",
		N:          cfg.N,
		FlushEvery: flushEvery,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeStringsJSON writes the strings experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeStringsJSON(path string, cfg bench.Config, points []bench.StringsPoint) {
	writeJSON(path, bench.StringsReport{
		Experiment: "strings",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// writeAdaptiveJSON writes the adaptive experiment's machine-readable
// report to path; it is a no-op when path is empty.
func writeAdaptiveJSON(path string, cfg bench.Config, points []bench.AdaptivePoint) {
	writeJSON(path, bench.AdaptiveReport{
		Experiment: "adaptive",
		N:          cfg.N,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	})
}

// suffixedPath derives a sibling report's file name when -exp all
// captures several experiments under one -json flag: "x.json" with
// suffix "_shardwrite" becomes "x_shardwrite.json". Empty stays empty
// (no capture requested).
func suffixedPath(path, suffix string) string {
	if path == "" {
		return ""
	}
	if ext := filepath.Ext(path); ext != "" {
		return strings.TrimSuffix(path, ext) + suffix + ext
	}
	return path + suffix
}

// writeJSON marshals a report to path; empty path is a no-op.
func writeJSON(path string, report any) {
	if path == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fitbench: encode json: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fitbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
