package main

import (
	"bytes"
	"strings"
	"testing"

	"fitingtree"
)

func shellTree(t *testing.T) *fitingtree.Tree[uint64, uint64] {
	t.Helper()
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 10)
		vals[i] = uint64(i)
	}
	tr, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 16, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func run(t *testing.T, script string) string {
	t.Helper()
	var out bytes.Buffer
	runShell(shellTree(t), strings.NewReader(script), &out)
	return out.String()
}

func TestShellGet(t *testing.T) {
	out := run(t, "get 500\nget 501\n")
	if !strings.Contains(out, "key 500 -> value 50") {
		t.Fatalf("missing hit: %s", out)
	}
	if !strings.Contains(out, "key 501 not found") {
		t.Fatalf("missing miss: %s", out)
	}
}

func TestShellRangeInsertDelete(t *testing.T) {
	out := run(t, "range 100 200\ninsert 105\nrange 100 200\ndelete 105\ndelete 105\n")
	if !strings.Contains(out, "11 elements in [100, 200]") {
		t.Fatalf("initial range wrong: %s", out)
	}
	if !strings.Contains(out, "12 elements in [100, 200]") {
		t.Fatalf("post-insert range wrong: %s", out)
	}
	if !strings.Contains(out, "deleted: true") || !strings.Contains(out, "deleted: false") {
		t.Fatalf("delete replies wrong: %s", out)
	}
}

func TestShellStatsAndErrors(t *testing.T) {
	out := run(t, "stats\nget\nget abc\nrange 1\nbogus\nquit\nget 500\n")
	if !strings.Contains(out, "elements=1000") {
		t.Fatalf("stats missing: %s", out)
	}
	if !strings.Contains(out, "usage: get <key>") {
		t.Fatalf("get usage missing: %s", out)
	}
	if !strings.Contains(out, "bad key") {
		t.Fatalf("bad key missing: %s", out)
	}
	if !strings.Contains(out, "usage: range <lo> <hi>") {
		t.Fatalf("range usage missing: %s", out)
	}
	if !strings.Contains(out, "commands:") {
		t.Fatalf("help missing: %s", out)
	}
	if strings.Contains(out, "key 500") {
		t.Fatalf("command after quit was executed: %s", out)
	}
}

func TestShellEmptyLines(t *testing.T) {
	out := run(t, "\n\nget 0\n")
	if !strings.Contains(out, "key 0 -> value 0") {
		t.Fatalf("empty lines broke the shell: %s", out)
	}
}
