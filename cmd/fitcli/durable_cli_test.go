package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildCLI compiles fitcli into a temp dir once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fitcli")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestCLISaveLoadRoundTrip persists a dataset with save and reads it back
// through the durable shell.
func TestCLISaveLoadRoundTrip(t *testing.T) {
	bin := buildCLI(t)
	dir := filepath.Join(t.TempDir(), "store")

	out, err := exec.Command(bin, "save", "-dir", dir, "-dataset", "iot", "-n", "20000", "-error", "64").CombinedOutput()
	if err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "saved 20000 iot keys") {
		t.Fatalf("save output: %s", out)
	}

	load := exec.Command(bin, "load", "-dir", dir)
	load.Stdin = strings.NewReader("insert 42\nget 42\nstats\nquit\n")
	out, err = load.CombinedOutput()
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "opened "+dir+": 20000 elements") {
		t.Fatalf("load banner missing: %s", s)
	}
	if !strings.Contains(s, "elements=20001") || !strings.Contains(s, "key 42 -> value 0") {
		t.Fatalf("shell replies wrong: %s", s)
	}

	// The shell insert must be durable: reopen and check.
	load = exec.Command(bin, "load", "-dir", dir)
	load.Stdin = strings.NewReader("get 42\nquit\n")
	out, err = load.CombinedOutput()
	if err != nil {
		t.Fatalf("reload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "key 42 -> value 0") {
		t.Fatalf("insert did not survive reopen: %s", out)
	}
}

// TestCLICrashRecovery SIGKILLs a pump mid-stream and verifies recovery
// retains every key the pump acknowledged before dying.
func TestCLICrashRecovery(t *testing.T) {
	bin := buildCLI(t)
	dir := filepath.Join(t.TempDir(), "store")

	if out, err := exec.Command(bin, "save", "-dir", dir, "-dataset", "iot", "-n", "5000", "-error", "64").CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}

	// Pump far more keys than we will let finish, flushing aggressively so
	// the kill can land mid-insert, mid-flush, or mid-checkpoint.
	const start, count = uint64(1 << 40), 200000
	pump := exec.Command(bin, "pump", "-dir", dir,
		"-start", strconv.FormatUint(start, 10),
		"-count", strconv.Itoa(count),
		"-flush-every", "64")
	stdout, err := pump.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := pump.Start(); err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	sc := bufio.NewScanner(stdout)
	for sc.Scan() && len(acked) < 700 {
		var k uint64
		if _, err := fmt.Sscanf(sc.Text(), "acked %d", &k); err != nil {
			t.Fatalf("bad pump line %q: %v", sc.Text(), err)
		}
		acked = append(acked, k)
	}
	if err := pump.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	pump.Wait() // expected to report the kill; the store is now mid-write
	if len(acked) < 100 {
		t.Fatalf("pump acknowledged only %d keys before kill", len(acked))
	}

	out, err := exec.Command(bin, "recover", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("recover: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recovered ") {
		t.Fatalf("recover output: %s", out)
	}

	// Every acknowledged key must be present, alongside the saved dataset.
	var script bytes.Buffer
	for _, k := range acked {
		fmt.Fprintf(&script, "get %d\n", k)
	}
	script.WriteString("stats\nquit\n")
	load := exec.Command(bin, "load", "-dir", dir)
	load.Stdin = &script
	out, err = load.CombinedOutput()
	if err != nil {
		t.Fatalf("load after recovery: %v\n%s", err, out)
	}
	s := string(out)
	if strings.Contains(s, "not found") {
		t.Fatalf("acknowledged key lost after crash recovery:\n%s", firstLines(s, 30))
	}
	for _, k := range []uint64{acked[0], acked[len(acked)/2], acked[len(acked)-1]} {
		if !strings.Contains(s, fmt.Sprintf("key %d -> value %d", k, k)) {
			t.Fatalf("key %d missing or wrong value after recovery:\n%s", k, firstLines(s, 30))
		}
	}
	// Element count: the 5000 saved keys plus at least the acked pump keys.
	if !strings.Contains(s, "elements=") {
		t.Fatalf("stats missing: %s", firstLines(s, 30))
	}
	n := elementsFrom(t, s)
	if n < 5000+len(acked) || n > 5000+count {
		t.Fatalf("recovered %d elements, want between %d and %d", n, 5000+len(acked), 5000+count)
	}
}

// firstLines truncates s to its first n lines for readable failures.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// elementsFrom extracts the elements=N field from shell stats output.
func elementsFrom(t *testing.T, s string) int {
	t.Helper()
	at := strings.Index(s, "elements=")
	if at < 0 {
		t.Fatalf("no stats in output")
	}
	var n int
	if _, err := fmt.Sscanf(s[at:], "elements=%d", &n); err != nil {
		t.Fatalf("parse stats: %v", err)
	}
	return n
}
