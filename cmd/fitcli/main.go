// Command fitcli is a small interactive demonstration of the FITing-Tree
// public API: it builds an index over a generated dataset and answers
// point, range, and stats commands from stdin.
//
// Usage:
//
//	fitcli -dataset iot -n 1000000 -error 100
//
// Commands (one per line):
//
//	get <key>          point lookup
//	range <lo> <hi>    count elements in [lo, hi]
//	insert <key>       insert a key
//	delete <key>       delete a key
//	stats              index statistics
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fitingtree"
	"fitingtree/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "iot", "dataset: iot, weblogs, taxi")
		n       = flag.Int("n", 1_000_000, "dataset size")
		errT    = flag.Int("error", 100, "error threshold")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var keys []uint64
	switch *dataset {
	case "iot":
		keys = workload.IoT(*n, *seed)
	case "weblogs":
		keys = workload.Weblogs(*n, *seed)
	case "taxi":
		keys = workload.TaxiPickupTime(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "fitcli: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: *errT, BufferSize: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitcli:", err)
		os.Exit(1)
	}
	st := t.Stats()
	fmt.Printf("loaded %d %s keys: %d segments, index %d bytes (data %d bytes)\n",
		t.Len(), *dataset, st.Pages, st.IndexSize, st.DataSize)

	runShell(t, os.Stdin, os.Stdout)
}

// runShell executes commands from in against the tree, writing replies to
// out, until EOF or the quit command.
func runShell(t *fitingtree.Tree[uint64, uint64], in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		switch fields[0] {
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: get <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			if v, ok := t.Lookup(k); ok {
				fmt.Fprintf(out, "key %d -> value %d\n", k, v)
			} else {
				fmt.Fprintf(out, "key %d not found\n", k)
			}
		case "range":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: range <lo> <hi>")
				break
			}
			lo, err1 := strconv.ParseUint(fields[1], 10, 64)
			hi, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(out, "bad bounds")
				break
			}
			count := 0
			t.AscendRange(lo, hi, func(uint64, uint64) bool { count++; return true })
			fmt.Fprintf(out, "%d elements in [%d, %d]\n", count, lo, hi)
		case "insert":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: insert <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			t.Insert(k, 0)
			fmt.Fprintln(out, "ok")
		case "delete":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: delete <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			fmt.Fprintln(out, "deleted:", t.Delete(k))
		case "stats":
			st := t.Stats()
			fmt.Fprintf(out, "elements=%d pages=%d buffered=%d height=%d index=%dB data=%dB\n",
				st.Elements, st.Pages, st.Buffered, st.Height, st.IndexSize, st.DataSize)
		case "quit", "exit":
			return
		default:
			fmt.Fprintln(out, "commands: get, range, insert, delete, stats, quit")
		}
		fmt.Fprint(out, "> ")
	}
}
