// Command fitcli is a small interactive demonstration of the FITing-Tree
// public API: it builds an index over a generated dataset and answers
// point, range, and stats commands from stdin.
//
// Usage:
//
//	fitcli -dataset iot -n 1000000 -error 100
//
// Commands (one per line):
//
//	get <key>          point lookup
//	range <lo> <hi>    count elements in [lo, hi]
//	insert <key>       insert a key
//	delete <key>       delete a key
//	stats              index statistics
//	quit
//
// The durable subcommands exercise the WAL + checkpoint storage engine
// end to end:
//
//	fitcli save -dir store -dataset iot -n 100000   bulk-build and persist
//	fitcli load -dir store                          open and run the shell
//	fitcli recover -dir store                       recover, checkpoint, report
//	fitcli pump -dir store -start 0 -count 10000    append keys, ack each
//	fitcli scrub -dir store                         verify checkpoint integrity
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fitingtree"
	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
	"fitingtree/internal/workload"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		var err error
		switch os.Args[1] {
		case "save":
			err = cmdSave(os.Args[2:])
		case "load":
			err = cmdLoad(os.Args[2:])
		case "recover":
			err = cmdRecover(os.Args[2:])
		case "pump":
			err = cmdPump(os.Args[2:])
		case "scrub":
			err = cmdScrub(os.Args[2:])
		default:
			fmt.Fprintf(os.Stderr, "fitcli: unknown command %q (save, load, recover, pump, scrub)\n", os.Args[1])
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fitcli:", err)
			os.Exit(1)
		}
		return
	}

	var (
		dataset = flag.String("dataset", "iot", "dataset: iot, weblogs, taxi")
		n       = flag.Int("n", 1_000_000, "dataset size")
		errT    = flag.Int("error", 100, "error threshold")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	keys, err := datasetKeys(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitcli:", err)
		os.Exit(2)
	}
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: *errT, BufferSize: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitcli:", err)
		os.Exit(1)
	}
	st := t.Stats()
	fmt.Printf("loaded %d %s keys: %d segments, index %d bytes (data %d bytes)\n",
		t.Len(), *dataset, st.Pages, st.IndexSize, st.DataSize)

	runShell(t, os.Stdin, os.Stdout)
}

// datasetKeys generates one of the named paper workloads.
func datasetKeys(dataset string, n int, seed int64) ([]uint64, error) {
	switch dataset {
	case "iot":
		return workload.IoT(n, seed), nil
	case "weblogs":
		return workload.Weblogs(n, seed), nil
	case "taxi":
		return workload.TaxiPickupTime(n, seed), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", dataset)
}

// openStore opens the WAL directory and page file backing a durable store
// rooted at dir.
func openStore(dir string) (*wal.DirFS, *pager.FileDisk, error) {
	fsys, err := wal.NewDirFS(dir)
	if err != nil {
		return nil, nil, err
	}
	dev, err := pager.OpenFileDisk(filepath.Join(dir, "pages.db"))
	if err != nil {
		return nil, nil, err
	}
	return fsys, dev, nil
}

// cmdSave bulk-builds a dataset and persists it as a durable store: an
// initial full checkpoint, an empty WAL.
func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "store directory (required)")
		dataset = fs.String("dataset", "iot", "dataset: iot, weblogs, taxi")
		n       = fs.Int("n", 100_000, "dataset size")
		errT    = fs.Int("error", 100, "error threshold")
		seed    = fs.Int64("seed", 1, "workload seed")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("save: -dir is required")
	}
	keys, err := datasetKeys(*dataset, *n, *seed)
	if err != nil {
		return err
	}
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: *errT})
	if err != nil {
		return err
	}
	fsys, dev, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer dev.Close()
	d, err := fitingtree.CreateDurable(fsys, dev, t)
	if err != nil {
		return err
	}
	if err := d.Close(); err != nil {
		return err
	}
	fmt.Printf("saved %d %s keys to %s (%d pages)\n", len(keys), *dataset, *dir, dev.NumPages())
	return nil
}

// cmdLoad opens a durable store and runs the interactive shell over it.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("load: -dir is required")
	}
	fsys, dev, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer dev.Close()
	d, err := fitingtree.OpenDurable[uint64, uint64](fsys, dev, fitingtree.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("opened %s: %d elements, wal tail %d records\n", *dir, d.Len(), d.WALRecords())
	runDurableShell(d, os.Stdin, os.Stdout)
	return d.Close()
}

// cmdRecover opens a durable store (running checkpoint-load + WAL replay),
// reports what recovery found, and checkpoints so the next open starts
// from a clean, truncated log.
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("recover: -dir is required")
	}
	fsys, dev, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer dev.Close()
	d, err := fitingtree.OpenDurable[uint64, uint64](fsys, dev, fitingtree.Options{})
	if err != nil {
		return err
	}
	tail := d.WALRecords()
	ws := d.WALOpenStats()
	stats, err := d.Checkpoint()
	if err != nil {
		d.Close()
		return err
	}
	fmt.Printf("recovered %d elements from %s (wal tail %d records)\n", d.Len(), *dir, tail)
	fmt.Printf("wal open: %d records, %d corrupt frames", ws.Records, ws.CorruptFrames)
	if ws.TruncatedAt > 0 {
		fmt.Printf(", repaired by cutting %d trailing bytes", ws.TruncatedAt)
	}
	fmt.Println()
	fmt.Printf("checkpoint: %d chunks written, %d reused, wal now %d records\n",
		stats.ChunksWritten, stats.ChunksReused, d.WALRecords())
	return d.Close()
}

// cmdScrub opens the page file read-only and verifies the committed
// checkpoint end to end: both superblocks, every live blob page chain's
// CRCs, every chunk's decode, and the reassembled trees' structural
// invariants. The WAL is untouched.
func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("scrub: -dir is required")
	}
	dev, err := pager.OpenFileDisk(filepath.Join(*dir, "pages.db"))
	if err != nil {
		return err
	}
	defer dev.Close()
	rep, err := fitingtree.Scrub[uint64, uint64](dev)
	if rep != nil {
		for slot, s := range rep.Supers {
			if s.Valid {
				fmt.Printf("superblock %d: ok, epoch %d\n", slot, s.Epoch)
			} else {
				fmt.Printf("superblock %d: invalid\n", slot)
			}
		}
	}
	if err != nil {
		return err
	}
	flavor := "single-tree"
	if rep.Sharded {
		flavor = fmt.Sprintf("sharded (generation %d)", rep.Generation)
	}
	fmt.Printf("checkpoint epoch %d: %s, %d shards, %d chunks, %d elements\n",
		rep.Epoch, flavor, rep.Shards, len(rep.Chunks), rep.Elements)
	for _, c := range rep.Chunks {
		fmt.Printf("  shard %d chunk %d: %d pages, %d bytes, %d elements ok\n",
			c.Shard, c.Index, c.Pages, c.Bytes, c.Elements)
	}
	fmt.Printf("%d live pages verified (%d manifest) of %d in file\n",
		rep.LivePages, rep.ManifestPages, dev.NumPages())
	return nil
}

// cmdPump appends sequential keys to a durable store, printing an "acked"
// line after each write is durable. A crash test kills the process
// mid-stream and verifies every acked key survives recovery.
func cmdPump(args []string) error {
	fs := flag.NewFlagSet("pump", flag.ExitOnError)
	var (
		dir        = fs.String("dir", "", "store directory (required)")
		start      = fs.Uint64("start", 0, "first key")
		count      = fs.Int("count", 10_000, "number of keys to insert")
		syncEvery  = fs.Int("sync-every", 1, "group-commit batch size")
		flushEvery = fs.Int("flush-every", 256, "delta flush threshold")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("pump: -dir is required")
	}
	fsys, dev, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer dev.Close()
	d, err := fitingtree.OpenDurable[uint64, uint64](fsys, dev, fitingtree.Options{})
	if err != nil {
		return err
	}
	d.SetSyncEvery(*syncEvery)
	d.SetFlushEvery(*flushEvery)
	out := bufio.NewWriter(os.Stdout)
	pending := 0
	for i := 0; i < *count; i++ {
		k := *start + uint64(i)
		if err := d.Insert(k, k); err != nil {
			return err
		}
		pending++
		if pending >= *syncEvery {
			// Insert's internal group commit has synced by now; every key
			// inserted so far is durable and can be acknowledged.
			if err := d.Sync(); err != nil {
				return err
			}
			for j := i - pending + 1; j <= i; j++ {
				fmt.Fprintf(out, "acked %d\n", *start+uint64(j))
			}
			out.Flush()
			pending = 0
		}
	}
	if err := d.Sync(); err != nil {
		return err
	}
	for j := *count - pending; j < *count; j++ {
		fmt.Fprintf(out, "acked %d\n", *start+uint64(j))
	}
	out.Flush()
	return d.Close()
}

// runDurableShell executes commands from in against the durable facade,
// writing replies to out, until EOF or the quit command.
func runDurableShell(d *fitingtree.Durable[uint64, uint64], in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		switch fields[0] {
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: get <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			if v, ok := d.Lookup(k); ok {
				fmt.Fprintf(out, "key %d -> value %d\n", k, v)
			} else {
				fmt.Fprintf(out, "key %d not found\n", k)
			}
		case "range":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: range <lo> <hi>")
				break
			}
			lo, err1 := strconv.ParseUint(fields[1], 10, 64)
			hi, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(out, "bad bounds")
				break
			}
			count := 0
			d.AscendRange(lo, hi, func(uint64, uint64) bool { count++; return true })
			fmt.Fprintf(out, "%d elements in [%d, %d]\n", count, lo, hi)
		case "insert":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: insert <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			if err := d.Insert(k, 0); err != nil {
				fmt.Fprintln(out, "insert failed:", err)
				break
			}
			fmt.Fprintln(out, "ok")
		case "delete":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: delete <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			found, err := d.Delete(k)
			if err != nil {
				fmt.Fprintln(out, "delete failed:", err)
				break
			}
			fmt.Fprintln(out, "deleted:", found)
		case "checkpoint":
			stats, err := d.Checkpoint()
			if err != nil {
				fmt.Fprintln(out, "checkpoint failed:", err)
				break
			}
			fmt.Fprintf(out, "checkpoint: %d chunks written, %d reused\n",
				stats.ChunksWritten, stats.ChunksReused)
		case "stats":
			st := d.Stats()
			fmt.Fprintf(out, "elements=%d pages=%d buffered=%d height=%d index=%dB data=%dB wal=%d\n",
				st.Elements, st.Pages, st.Buffered, st.Height, st.IndexSize, st.DataSize, d.WALRecords())
		case "quit", "exit":
			return
		default:
			fmt.Fprintln(out, "commands: get, range, insert, delete, checkpoint, stats, quit")
		}
		fmt.Fprint(out, "> ")
	}
}

// runShell executes commands from in against the tree, writing replies to
// out, until EOF or the quit command.
func runShell(t *fitingtree.Tree[uint64, uint64], in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		switch fields[0] {
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: get <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			if v, ok := t.Lookup(k); ok {
				fmt.Fprintf(out, "key %d -> value %d\n", k, v)
			} else {
				fmt.Fprintf(out, "key %d not found\n", k)
			}
		case "range":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: range <lo> <hi>")
				break
			}
			lo, err1 := strconv.ParseUint(fields[1], 10, 64)
			hi, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(out, "bad bounds")
				break
			}
			count := 0
			t.AscendRange(lo, hi, func(uint64, uint64) bool { count++; return true })
			fmt.Fprintf(out, "%d elements in [%d, %d]\n", count, lo, hi)
		case "insert":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: insert <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			t.Insert(k, 0)
			fmt.Fprintln(out, "ok")
		case "delete":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: delete <key>")
				break
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintln(out, "bad key:", err)
				break
			}
			fmt.Fprintln(out, "deleted:", t.Delete(k))
		case "stats":
			st := t.Stats()
			fmt.Fprintf(out, "elements=%d pages=%d buffered=%d height=%d index=%dB data=%dB\n",
				st.Elements, st.Pages, st.Buffered, st.Height, st.IndexSize, st.DataSize)
		case "quit", "exit":
			return
		default:
			fmt.Fprintln(out, "commands: get, range, insert, delete, stats, quit")
		}
		fmt.Fprint(out, "> ")
	}
}
