// Command doclint checks that every exported top-level identifier in the
// given package directories carries a doc comment. It is the repository's
// documentation gate (run by CI over the public API and internal/core):
//
//	go run ./cmd/doclint . ./internal/core
//
// A declaration is considered documented if the declaration group or the
// individual spec has a doc comment, or (for single-line const/var specs)
// a trailing line comment. Test files are skipped. The exit status is
// non-zero if any exported identifier is undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and reports undocumented
// exported declarations, returning how many it found.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: undocumented exported %s %s\n", fset.Position(pos), what, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "const/var", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a function is package-level or a method on
// an exported type; methods on unexported types are not part of the
// documented surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[K]
			t = x.X
		case *ast.IndexListExpr: // generic receiver T[K, V]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
