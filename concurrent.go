package fitingtree

import "sync"

// Concurrent is a reader/writer-safe facade over a Tree: lookups and scans
// take a shared lock, mutations an exclusive one. It matches the paper's
// single-writer evaluation setup while letting multiple reader goroutines
// share the index.
type Concurrent[K Key, V any] struct {
	mu sync.RWMutex
	t  *Tree[K, V]
}

// NewConcurrent wraps an existing tree. The tree must not be used directly
// afterwards.
func NewConcurrent[K Key, V any](t *Tree[K, V]) *Concurrent[K, V] {
	return &Concurrent[K, V]{t: t}
}

// Lookup returns a value stored under k.
func (c *Concurrent[K, V]) Lookup(k K) (V, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Lookup(k)
}

// Contains reports whether k is present.
func (c *Concurrent[K, V]) Contains(k K) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Contains(k)
}

// Each calls fn for every element with key exactly k. fn must not call
// back into the index.
func (c *Concurrent[K, V]) Each(k K, fn func(v V) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Each(k, fn)
}

// AscendRange calls fn for elements with lo <= key <= hi in order. fn must
// not call back into the index.
func (c *Concurrent[K, V]) AscendRange(lo, hi K, fn func(k K, v V) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.AscendRange(lo, hi, fn)
}

// LookupBatch looks up every element of keys under one shared lock
// acquisition, returning values and found flags parallel to keys (see
// Tree.LookupBatch).
func (c *Concurrent[K, V]) LookupBatch(keys []K) ([]V, []bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.LookupBatch(keys)
}

// Insert adds (k, v).
func (c *Concurrent[K, V]) Insert(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t.Insert(k, v)
}

// Delete removes one element with key k.
func (c *Concurrent[K, V]) Delete(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Delete(k)
}

// DeleteValue removes one element with key k whose value equals v under
// Go equality, reporting whether one was removed. It panics for
// non-comparable value types.
func (c *Concurrent[K, V]) DeleteValue(k K, v V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.DeleteValue(k, v)
}

// Len returns the number of stored elements.
func (c *Concurrent[K, V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// Stats returns the tree's statistics.
func (c *Concurrent[K, V]) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Stats()
}
