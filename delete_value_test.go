package fitingtree_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fitingtree"
	"fitingtree/keycodec"
)

// TestDeleteValueVictimFlushIndependent pins the contract that closed the
// Delete wart: the victim of a value-addressed delete is the element the
// caller named, for every placement the pipeline can put the duplicates
// in — buffered, frozen at any ladder depth, or flushed to page data.
// Plain Delete cannot pass this check: its victim among distinct-valued
// duplicates is "newest pending insert, else first in scan order", so the
// survivor set depends on where the flush boundary fell when the delete
// arrived (see the Optimistic.Delete doc).
func TestDeleteValueVictimFlushIndependent(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		for _, flushAt := range []int{1, 2, 3, 100} {
			for _, async := range []bool{false, true} {
				tr, err := fitingtree.BulkLoad[uint64, string](nil, nil, fitingtree.Options{Error: 8, BufferSize: 4})
				if err != nil {
					t.Fatal(err)
				}
				o := fitingtree.NewOptimistic(tr)
				o.SetAsyncFlush(async)
				o.SetMaxFrozenLayers(depth)
				o.SetFlushEvery(flushAt)

				// Three distinct-valued duplicates arriving across whatever
				// flush boundaries the config produces, plus unrelated keys
				// to keep the pipeline moving.
				o.Insert(7, "first")
				for i := 0; i < 5; i++ {
					o.Insert(uint64(100+i), "pad")
				}
				o.Insert(7, "second")
				for i := 0; i < 5; i++ {
					o.Insert(uint64(200+i), "pad")
				}
				o.Insert(7, "third")

				if !o.DeleteValue(7, "second") {
					t.Fatalf("depth=%d flushAt=%d async=%v: DeleteValue(7, second) missed", depth, flushAt, async)
				}
				if o.DeleteValue(7, "second") {
					t.Fatalf("depth=%d flushAt=%d async=%v: double DeleteValue succeeded", depth, flushAt, async)
				}
				if o.DeleteValue(7, "absent") {
					t.Fatalf("depth=%d flushAt=%d async=%v: DeleteValue of absent value succeeded", depth, flushAt, async)
				}
				survivors := map[string]bool{}
				o.Each(7, func(v string) bool {
					survivors[v] = true
					return true
				})
				if len(survivors) != 2 || !survivors["first"] || !survivors["third"] {
					t.Fatalf("depth=%d flushAt=%d async=%v: survivors %v, want {first third}",
						depth, flushAt, async, survivors)
				}
				// Close drains the ladder; the outcome must not move.
				o.Close()
				n := 0
				o.Each(7, func(v string) bool {
					if v == "second" {
						t.Fatalf("depth=%d flushAt=%d async=%v: victim resurfaced after fold", depth, flushAt, async)
					}
					n++
					return true
				})
				if n != 2 {
					t.Fatalf("depth=%d flushAt=%d async=%v: %d survivors after fold", depth, flushAt, async, n)
				}
			}
		}
	}
}

// dvModel is an exact per-key value-multiset reference for the
// deterministic write mix used by the string-keyed suites: Insert,
// DeleteValue (victim named by the caller), and anonymous Delete issued
// only when a key's live values are all equal — the one case where its
// victim's value is forced regardless of flush timing.
type dvModel struct {
	vals map[string]map[uint64]int
	len  int
}

func newDVModel() *dvModel { return &dvModel{vals: map[string]map[uint64]int{}} }

func (m *dvModel) insert(k string, v uint64) {
	if m.vals[k] == nil {
		m.vals[k] = map[uint64]int{}
	}
	m.vals[k][v]++
	m.len++
}

func (m *dvModel) deleteValue(k string, v uint64) bool {
	if m.vals[k][v] == 0 {
		return false
	}
	m.vals[k][v]--
	m.len--
	return true
}

// deleteForced removes one element when the key's live values are all
// equal; ok is false (op must be skipped) when the victim is ambiguous.
func (m *dvModel) deleteForced(k string) (removed bool, ok bool) {
	distinct, live := uint64(0), 0
	classes := 0
	for v, c := range m.vals[k] {
		if c > 0 {
			distinct = v
			classes++
			live += c
		}
	}
	if classes > 1 {
		return false, false
	}
	if live == 0 {
		return false, true
	}
	m.vals[k][distinct]--
	m.len--
	return true, true
}

func (m *dvModel) counts(k string) map[uint64]int {
	out := map[uint64]int{}
	for v, c := range m.vals[k] {
		if c > 0 {
			out[v] = c
		}
	}
	return out
}

// stringIndex is the write surface the string-keyed suites drive, shared
// by Optimistic and Sharded.
type stringIndex interface {
	Insert(k string, v uint64)
	Delete(k string) bool
	DeleteValue(k string, v uint64) bool
	Each(k string, fn func(v uint64) bool)
	AscendRange(lo, hi string, fn func(k string, v uint64) bool)
	Len() int
	Close()
}

// driveStringModel runs the deterministic write mix against idx and the
// exact model, checking per-key multisets, total length, and globally
// ordered scans (string order over keycodec.Uint64 equals numeric order)
// at every phase and again after draining the pipeline.
func driveStringModel(t *testing.T, idx stringIndex, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := newDVModel()
	key := func(n int) string { return keycodec.Uint64(uint64(n)) }

	// Seed content through the facade so every layer sees traffic.
	for i := 0; i < 600; i++ {
		k := key(rng.Intn(200) * 3)
		v := uint64(rng.Intn(6))
		idx.Insert(k, v)
		m.insert(k, v)
	}

	check := func(phase int) {
		t.Helper()
		if idx.Len() != m.len {
			t.Fatalf("phase %d: Len = %d, model %d", phase, idx.Len(), m.len)
		}
		for i := 0; i < 64; i++ {
			k := key(rng.Intn(700))
			got := map[uint64]int{}
			idx.Each(k, func(v uint64) bool {
				got[v]++
				return true
			})
			want := m.counts(k)
			if len(got) != len(want) {
				t.Fatalf("phase %d: Each(%q) classes %v, model %v", phase, k, got, want)
			}
			for v, c := range want {
				if got[v] != c {
					t.Fatalf("phase %d: Each(%q) value %d count %d, model %d", phase, k, got[v], v, c)
				}
			}
		}
		// Global scan: keys ascend in string order, every (k,v) matches
		// the model's multiset exactly.
		scan := map[string]map[uint64]int{}
		prev := ""
		idx.AscendRange(key(0), key(1<<30), func(k string, v uint64) bool {
			if k < prev {
				t.Fatalf("phase %d: scan went backwards: %q after %q", phase, k, prev)
			}
			prev = k
			if scan[k] == nil {
				scan[k] = map[uint64]int{}
			}
			scan[k][v]++
			return true
		})
		for k, want := range m.vals {
			for v, c := range want {
				if c > 0 && scan[k][v] != c {
					t.Fatalf("phase %d: scan key %q value %d count %d, model %d", phase, k, v, scan[k][v], c)
				}
			}
		}
	}

	check(-1)
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 500; i++ {
			k := key(rng.Intn(700))
			switch r := rng.Intn(10); {
			case r < 5:
				v := uint64(rng.Intn(6))
				idx.Insert(k, v)
				m.insert(k, v)
			case r < 8:
				v := uint64(rng.Intn(6))
				if got, want := idx.DeleteValue(k, v), m.deleteValue(k, v); got != want {
					t.Fatalf("phase %d: DeleteValue(%q,%d) = %v, model %v", phase, k, v, got, want)
				}
			default:
				want, ok := m.deleteForced(k)
				if !ok {
					continue
				}
				if got := idx.Delete(k); got != want {
					t.Fatalf("phase %d: Delete(%q) = %v, model %v", phase, k, got, want)
				}
			}
		}
		check(phase)
	}
	idx.Close()
	check(3)
}

// TestStringKeyedLadderModel runs the exact multiset model against
// string-keyed Optimistic pipelines across ladder depths, routers, and
// flush modes: the ordered-bytes key contract (native < for correctness,
// truncated-prefix Approx for interpolation only) must leave every
// observation identical to a numeric-keyed tree's.
func TestStringKeyedLadderModel(t *testing.T) {
	for _, router := range []fitingtree.RouterKind{fitingtree.RouterBTree, fitingtree.RouterImplicit} {
		rname := map[fitingtree.RouterKind]string{
			fitingtree.RouterBTree:    "btree",
			fitingtree.RouterImplicit: "implicit",
		}[router]
		for _, depth := range []int{1, 2, 4, 8} {
			for _, async := range []bool{false, true} {
				mode := "inline"
				if async {
					mode = "async"
				}
				router, depth, async := router, depth, async
				t.Run(fmt.Sprintf("%s/depth=%d/%s", rname, depth, mode), func(t *testing.T) {
					for _, flushAt := range []int{2, 13} {
						tr, err := fitingtree.BulkLoad[string, uint64](nil, nil,
							fitingtree.Options{Error: 32, BufferSize: 8, Router: router})
						if err != nil {
							t.Fatal(err)
						}
						o := fitingtree.NewOptimistic(tr)
						o.SetAsyncFlush(async)
						o.SetMaxFrozenLayers(depth)
						o.SetFlushEvery(flushAt)
						driveStringModel(t, o, int64(depth)*1009+int64(flushAt))
					}
				})
			}
		}
	}
}

// TestStringKeyedShardedModel runs the same exact model against a
// string-keyed Sharded facade, exercising ordered-bytes keys through
// shard routing, rebalancing, and per-shard pipelines.
func TestStringKeyedShardedModel(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tr, err := fitingtree.BulkLoad[string, uint64](nil, nil, fitingtree.Options{Error: 32, BufferSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			s, err := fitingtree.NewSharded(tr, shards)
			if err != nil {
				t.Fatal(err)
			}
			s.SetFlushEvery(7)
			driveStringModel(t, s, int64(shards)*7919)
		})
	}
}

// TestStringKeyedSecondary drives the randomized secondary-index model
// with ordered-bytes composite keys: a two-component keycodec.Tuple
// (city, Uint64(ts)) indexes rows whose postings must survive exact
// victim deletes among heavy duplication.
func TestStringKeyedSecondary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr, err := fitingtree.BulkLoad[string, int](nil, nil, fitingtree.Options{Error: 16, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	o := fitingtree.NewOptimistic(tr)
	defer o.Close()
	idx := fitingtree.NewSecondary[string, int](o)
	cities := []string{"ber", "lim", "okl", "osl", "tok"}
	ref := map[string]map[int]bool{}
	for row := 0; row < 4_000; row++ {
		k := keycodec.Tuple(cities[rng.Intn(len(cities))], keycodec.Uint64(uint64(rng.Intn(50))))
		idx.Insert(k, row)
		if ref[k] == nil {
			ref[k] = map[int]bool{}
		}
		ref[k][row] = true
		if rng.Intn(3) == 0 { // delete a random existing posting
			for dk, rows := range ref {
				for dr := range rows {
					if !idx.Delete(dk, dr) {
						t.Fatalf("Delete(%q,%d) missed", dk, dr)
					}
					delete(rows, dr)
					break
				}
				break
			}
		}
	}
	want := 0
	for k, rows := range ref {
		want += len(rows)
		got := idx.Rows(k)
		if len(got) != len(rows) {
			t.Fatalf("key %q: %d postings, want %d", k, len(got), len(rows))
		}
		sort.Ints(got)
		for _, r := range got {
			if !rows[r] {
				t.Fatalf("key %q: alien posting %d", k, r)
			}
		}
	}
	if idx.Len() != want {
		t.Fatalf("Len = %d, want %d", idx.Len(), want)
	}
}
