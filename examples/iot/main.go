// IoT dashboard example: the workload from the paper's introduction. A
// clustered FITing-Tree indexes 2 million building-sensor event timestamps
// whose day/night periodicity makes the key->position mapping piece-wise
// linear — exactly the structure the index exploits. The example contrasts
// the index footprint across error thresholds and runs typical dashboard
// queries (latest event before t, events in a time window).
package main

import (
	"fmt"
	"log"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

func main() {
	const n = 2_000_000
	keys := workload.IoT(n, 42) // event timestamps in ms over 500 days
	readings := make([]float64, n)
	for i := range readings {
		readings[i] = 20 + float64(i%100)/10 // fake sensor values
	}

	fmt.Println("error-threshold sweep over 2M IoT events:")
	fmt.Printf("%-8s %-10s %-12s %s\n", "error", "segments", "index", "build")
	for _, e := range []int{10, 100, 1_000, 10_000} {
		start := time.Now()
		t, err := fitingtree.BulkLoad(keys, readings, fitingtree.Options{Error: e, BufferSize: -1})
		if err != nil {
			log.Fatal(err)
		}
		st := t.Stats()
		fmt.Printf("%-8d %-10d %-12d %s\n", e, st.Pages, st.IndexSize, time.Since(start).Round(time.Millisecond))
	}

	t, err := fitingtree.BulkLoad(keys, readings, fitingtree.Options{Error: 100, BufferSize: -1})
	if err != nil {
		log.Fatal(err)
	}

	// Dashboard query 1: events in a one-hour window in the middle of the
	// deployment.
	mid := keys[n/2]
	lo, hi := mid, mid+3600_000
	count := 0
	var sum float64
	t.AscendRange(lo, hi, func(k uint64, v float64) bool {
		count++
		sum += v
		return true
	})
	fmt.Printf("\nwindow [%d, %d]: %d events, mean reading %.2f\n", lo, hi, count, sum/float64(max(1, count)))

	// Dashboard query 2: ingest a live burst of events and query again —
	// the buffers and re-segmentation keep the error bound.
	for i := 0; i < 10_000; i++ {
		t.Insert(mid+uint64(i%3600)*1000, 99.9)
	}
	count2 := 0
	t.AscendRange(lo, hi, func(k uint64, v float64) bool { count2++; return true })
	fmt.Printf("after 10k live inserts the same window holds %d events\n", count2)
	fmt.Printf("maintenance: %+v\n", t.Counters())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
