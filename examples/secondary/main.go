// Secondary-index example: a non-clustered FITing-Tree over the longitude
// attribute of an unsorted heap table of map features (the paper's Maps
// dataset scenario, Figure 3). The index stores sorted (key, row id)
// postings subject to the error-bounded segmentation; queries fetch rows
// from the heap table through the returned row ids.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"fitingtree"
	"fitingtree/internal/workload"
)

// feature is one row of the heap table.
type feature struct {
	name string
	lon  float64
	lat  float64
}

func main() {
	const n = 500_000
	// Build an unsorted heap table: longitudes come from a continent-
	// clustered distribution, rows arrive in arbitrary order.
	lons := workload.MapsLongitude(n, 7)
	rng := rand.New(rand.NewSource(8))
	rng.Shuffle(len(lons), func(i, j int) { lons[i], lons[j] = lons[j], lons[i] })
	table := make([]feature, n)
	column := make([]float64, n)
	for i := range table {
		table[i] = feature{
			name: fmt.Sprintf("feature-%d", i),
			lon:  lons[i],
			lat:  -90 + 180*rng.Float64(),
		}
		column[i] = table[i].lon
	}

	idx, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 100, BufferSize: -1})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("secondary index over %d rows: %d segments, %d bytes\n",
		idx.Len(), st.Pages, st.IndexSize)

	// Query: everything in a 2-degree band around Greenwich.
	count := 0
	var sample []string
	idx.RangeRows(-1.0, 1.0, func(lon float64, row int) bool {
		count++
		if len(sample) < 3 {
			sample = append(sample, fmt.Sprintf("%s@%.3f", table[row].name, table[row].lon))
		}
		return true
	})
	fmt.Printf("features with lon in [-1, 1]: %d (e.g. %v)\n", count, sample)

	// Exact-match query with duplicates: all rows at one longitude.
	probe := column[123]
	rows := idx.Rows(probe)
	fmt.Printf("rows at lon=%.6f: %d\n", probe, len(rows))
	for _, r := range rows {
		if table[r].lon != probe {
			log.Fatalf("index returned wrong row %d", r)
		}
	}

	// Appending a row updates the index incrementally.
	table = append(table, feature{name: "new-cafe", lon: 0.5, lat: 51.5})
	idx.Insert(0.5, len(table)-1)
	found := false
	for _, r := range idx.Rows(0.5) {
		if table[r].name == "new-cafe" {
			found = true
		}
	}
	fmt.Printf("new row indexed: %v\n", found)

	// Deleting a specific posting. Delete names the exact (key, row)
	// pair, so among duplicate keys no other row's posting can be the
	// victim.
	if !idx.Delete(0.5, len(table)-1) {
		log.Fatal("delete of posting failed")
	}
	fmt.Println("posting deleted")

	// Maintenance under concurrent writes: the same index API over a
	// Sharded backend takes posting updates from many goroutines while
	// readers scan. NewSecondary accepts any backend satisfying
	// fitingtree.Index — plain Tree, Concurrent, Optimistic, or Sharded.
	empty, err := fitingtree.BulkLoad[float64, int](nil, nil, fitingtree.Options{Error: 100})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := fitingtree.NewSharded(empty, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer shards.Close()
	live := fitingtree.NewSecondary[float64, int](shards)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				live.Insert(column[i], i)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("concurrently built index: %d postings, %d rows at lon=%.6f\n",
		live.Len(), len(live.Rows(probe)), probe)
}
