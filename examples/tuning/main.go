// Tuning example: use the Section 6 cost model to derive the error
// threshold from service requirements instead of guessing. One index is
// tuned for a lookup-latency SLA, another for a storage budget, and both
// predictions are validated against the built index.
package main

import (
	"fmt"
	"log"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

func main() {
	const n = 1_000_000
	keys := workload.Weblogs(n, 3) // 14 years of request timestamps
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	candidates := []int{10, 100, 1_000, 10_000, 100_000}

	// Case 1: an interactive application demands low-latency lookups. The
	// feasible SLA depends on the host's measured random-access cost, so
	// try a ladder from ambitious to lenient and keep the tightest that
	// the model can satisfy.
	var res fitingtree.TuneResult
	var sla float64
	var err error
	for _, sla = range []float64{1_000, 2_000, 5_000, 20_000} {
		res, err = fitingtree.Tune(keys, fitingtree.TuneRequest{
			MaxLatencyNs: sla,
			Candidates:   candidates,
		})
		if err == nil {
			break
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency SLA %.0fns -> error=%d (predicted %.0fns, %d bytes; c=%.1fns measured)\n",
		sla, res.Error, res.PredictedLatencyNs, res.PredictedSizeBytes, res.CacheMissNs)
	t1, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: res.Error, BufferSize: -1, FillFactor: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  built: %d segments, %d bytes, measured lookup %s\n",
		t1.Stats().Pages, t1.Stats().IndexSize, measure(t1, keys))

	// Case 2: the index must fit in 256 KiB.
	res2, err := fitingtree.Tune(keys, fitingtree.TuneRequest{
		MaxIndexBytes: 256 << 10,
		Candidates:    candidates,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space budget 256KiB -> error=%d (predicted %.0fns, %d bytes)\n",
		res2.Error, res2.PredictedLatencyNs, res2.PredictedSizeBytes)
	t2, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: res2.Error, BufferSize: -1, FillFactor: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	actual := t2.Stats().IndexSize
	fmt.Printf("  built: %d bytes actual (fits: %v), measured lookup %s\n",
		actual, actual <= 256<<10, measure(t2, keys))
}

// measure times 100k random hits.
func measure(t *fitingtree.Tree[uint64, uint64], keys []uint64) time.Duration {
	const probes = 100_000
	start := time.Now()
	for i := 0; i < probes; i++ {
		t.Lookup(keys[(i*7919)%len(keys)])
	}
	return time.Since(start) / probes
}
