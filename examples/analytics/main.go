// Analytics example: the OLAP-flavored workload from the paper's
// introduction. A web analytics service keeps 14 years of request
// timestamps clustered by time; dashboards issue range aggregations
// (requests per day, busiest hour, percentile latency per window). The
// example shows that a FITing-Tree a few hundred KB in size drives these
// scans as fast as a dense index hundreds of MB would, and demonstrates
// snapshotting the index to a file.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fitingtree"
	"fitingtree/internal/workload"
)

const dayMs = 24 * 3600 * 1000

func main() {
	const n = 2_000_000
	keys := workload.Weblogs(n, 11) // request timestamps (ms over 14 years)
	latencies := make([]uint32, n)  // fake per-request service latency
	for i := range latencies {
		latencies[i] = uint32(1000 + (i*2654435761)%9000)
	}

	start := time.Now()
	idx, err := fitingtree.BulkLoad(keys, latencies, fitingtree.Options{Error: 100, BufferSize: -1})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("indexed %d requests in %s: %d segments, %s index\n",
		n, time.Since(start).Round(time.Millisecond), st.Pages, human(st.IndexSize))

	// Query 1: requests per day for one week in the middle of the data.
	weekStart := keys[n/2] / dayMs * dayMs
	fmt.Println("\nrequests per day:")
	for d := uint64(0); d < 7; d++ {
		lo := weekStart + d*dayMs
		count := 0
		idx.AscendRange(lo, lo+dayMs-1, func(uint64, uint32) bool { count++; return true })
		fmt.Printf("  day %d: %6d\n", d, count)
	}

	// Query 2: busiest hour of that week.
	bestHour, bestCount := uint64(0), 0
	for h := uint64(0); h < 7*24; h++ {
		lo := weekStart + h*3600_000
		count := 0
		idx.AscendRange(lo, lo+3599_999, func(uint64, uint32) bool { count++; return true })
		if count > bestCount {
			bestHour, bestCount = h, count
		}
	}
	fmt.Printf("\nbusiest hour: +%dh with %d requests\n", bestHour, bestCount)

	// Query 3: mean latency in the busiest hour.
	lo := weekStart + bestHour*3600_000
	var sum, cnt uint64
	idx.AscendRange(lo, lo+3599_999, func(_ uint64, v uint32) bool {
		sum += uint64(v)
		cnt++
		return true
	})
	fmt.Printf("mean latency there: %.0fus\n", float64(sum)/float64(cnt))

	// Snapshot the index, reload it, and rerun a query to show parity.
	path := filepath.Join(os.TempDir(), "analytics.fit")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fitingtree.Encode(idx, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("\nsnapshot written: %s (%s)\n", path, human(info.Size()))

	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	back, err := fitingtree.Decode[uint64, uint32](rf)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	back.AscendRange(lo, lo+3599_999, func(uint64, uint32) bool { count++; return true })
	fmt.Printf("reloaded index answers the same query: %d requests (want %d)\n", count, cnt)
	os.Remove(path)
}

func human(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
