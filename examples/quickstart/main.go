// Quickstart: build a FITing-Tree over a sorted column, look keys up,
// insert, scan a range, and inspect the space/latency trade-off.
package main

import (
	"fmt"
	"log"

	"fitingtree"
)

func main() {
	// A sorted attribute: order timestamps (seconds) of an e-commerce
	// site, denser during the day than at night.
	var keys []uint64
	var vals []string
	for day := 0; day < 30; day++ {
		for sec := 0; sec < 86_400; sec += 40 {
			// Day hours get 8x the traffic of night hours.
			if h := sec / 3600; h >= 8 && h <= 22 {
				for burst := 0; burst < 8; burst++ {
					keys = append(keys, uint64(day*86_400+sec)+uint64(burst))
					vals = append(vals, fmt.Sprintf("order-%d", len(keys)))
				}
			} else {
				keys = append(keys, uint64(day*86_400+sec))
				vals = append(vals, fmt.Sprintf("order-%d", len(keys)))
			}
		}
	}

	// Build with a 100-position error budget: lookups scan at most ~200
	// entries after interpolation.
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100, BufferSize: -1})
	if err != nil {
		log.Fatal(err)
	}

	st := t.Stats()
	fmt.Printf("indexed %d orders with %d linear segments\n", t.Len(), st.Pages)
	fmt.Printf("index size: %d bytes (%.4f%% of the %d-byte data)\n",
		st.IndexSize, 100*float64(st.IndexSize)/float64(st.DataSize), st.DataSize)

	// Point lookup.
	if v, ok := t.Lookup(keys[12345]); ok {
		fmt.Printf("key %d -> %s\n", keys[12345], v)
	}

	// Insert a late-arriving order; the per-segment buffer absorbs it.
	t.Insert(keys[12345]+1, "order-late")
	if v, ok := t.Lookup(keys[12345] + 1); ok {
		fmt.Printf("after insert: %d -> %s\n", keys[12345]+1, v)
	}

	// Range scan: orders in the first hour of day 3.
	lo := uint64(3 * 86_400)
	hi := lo + 3599
	count := 0
	t.AscendRange(lo, hi, func(k uint64, v string) bool {
		count++
		return true
	})
	fmt.Printf("orders in day 3, hour 0: %d\n", count)
}
