package fitingtree_test

import (
	"math/rand"
	"testing"

	"fitingtree"
	"fitingtree/internal/baseline"
	"fitingtree/internal/btree"
	"fitingtree/internal/workload"
)

// TestLookupAgreementAcrossApproaches builds all four competitors of the
// evaluation over the same data and checks they answer identically on a
// mixed hit/miss probe stream — the correctness backbone behind every
// latency figure.
func TestLookupAgreementAcrossApproaches(t *testing.T) {
	keys := workload.Weblogs(80_000, 51)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	ft, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := baseline.NewFixed(keys, vals, 100, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := baseline.NewBinarySearch(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	maxKey := keys[len(keys)-1]
	for i := 0; i < 100_000; i++ {
		var k uint64
		if i%2 == 0 {
			k = keys[rng.Intn(len(keys))]
		} else {
			k = uint64(rng.Int63n(int64(maxKey + 1000)))
		}
		_, a := ft.Lookup(k)
		_, b := fx.Lookup(k)
		_, c := fu.Lookup(k)
		_, d := bs.Lookup(k)
		if a != b || a != c || a != d {
			t.Fatalf("approaches disagree on %d: fiting=%v fixed=%v full=%v binary=%v", k, a, b, c, d)
		}
	}
}

// TestIndexSizeOrdering is Figure 6's space story as an invariant: for
// realistic data the FITing index is smaller than fixed paging at the same
// parameter, and both are far below the dense index.
func TestIndexSizeOrdering(t *testing.T) {
	keys := workload.IoT(200_000, 53)
	vals := make([]uint64, len(keys))
	fu, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []int{100, 1000} {
		ft, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e, BufferSize: 0})
		if err != nil {
			t.Fatal(err)
		}
		fx, err := baseline.NewFixed(keys, vals, e, btree.DefaultOrder)
		if err != nil {
			t.Fatal(err)
		}
		ftSize := ft.Stats().IndexSize
		if ftSize >= fx.SizeBytes() {
			t.Fatalf("e=%d: FITing %d not below Fixed %d", e, ftSize, fx.SizeBytes())
		}
		if ftSize*10 >= fu.SizeBytes() {
			t.Fatalf("e=%d: FITing %d not at least 10x below Full %d", e, ftSize, fu.SizeBytes())
		}
	}
}

// TestErrorBoundEndToEnd drives the public API through a bulk load plus a
// heavy mixed workload on every strategy/router combination and verifies
// the invariants (including the paper's error bound) still hold.
func TestErrorBoundEndToEnd(t *testing.T) {
	combos := []fitingtree.Options{
		{Error: 30, BufferSize: 10},
		{Error: 30, BufferSize: 10, Search: fitingtree.SearchLinear},
		{Error: 30, BufferSize: 10, Search: fitingtree.SearchExponential},
		{Error: 30, BufferSize: 10, Router: fitingtree.RouterImplicit},
	}
	base := workload.IoT(20_000, 54)
	vals := make([]uint64, len(base))
	for ci, opts := range combos {
		tr, err := fitingtree.BulkLoad(base, vals, opts)
		if err != nil {
			t.Fatalf("combo %d: %v", ci, err)
		}
		rng := rand.New(rand.NewSource(int64(55 + ci)))
		maxKey := base[len(base)-1]
		for i := 0; i < 10_000; i++ {
			k := uint64(rng.Int63n(int64(maxKey)))
			switch i % 3 {
			case 0:
				tr.Insert(k, uint64(i))
			case 1:
				tr.Delete(k)
			default:
				tr.Lookup(k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("combo %d: %v", ci, err)
		}
	}
}

// TestSecondaryAgreesWithTableScan cross-checks the non-clustered index
// against brute force on a shuffled heap column.
func TestSecondaryAgreesWithTableScan(t *testing.T) {
	column := workload.TaxiDropLat(30_000, 56)
	rng := rand.New(rand.NewSource(57))
	rng.Shuffle(len(column), func(i, j int) { column[i], column[j] = column[j], column[i] })
	idx, err := fitingtree.BuildSecondary(column, fitingtree.Options{Error: 64})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := 40.5 + rng.Float64()*0.4
		hi := lo + rng.Float64()*0.05
		want := 0
		for _, v := range column {
			if v >= lo && v <= hi {
				want++
			}
		}
		got := 0
		idx.RangeRows(lo, hi, func(k float64, row int) bool {
			if column[row] != k {
				t.Fatalf("posting mismatch: row %d holds %f, key %f", row, column[row], k)
			}
			got++
			return true
		})
		if got != want {
			t.Fatalf("range [%f,%f]: got %d postings, want %d", lo, hi, got, want)
		}
	}
}
