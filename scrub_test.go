package fitingtree

import (
	"testing"

	"fitingtree/internal/pager"
	"fitingtree/internal/wal"
)

// TestScrubSharded verifies the integrity auditor against a healthy
// sharded store: both manifest flavors detected, every chunk accounted,
// element totals exact.
func TestScrubSharded(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	keys := make([]int, 3000)
	vals := make([]int, len(keys))
	for i := range keys {
		keys[i], vals[i] = i*2, i
	}
	tree, err := BulkLoad(keys, vals, Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CreateDurableSharded(mem, dev, tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	for i := 0; i < 100; i++ {
		if err := d.Insert(i*2+1, -i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub[int, int](dev)
	if err != nil {
		t.Fatalf("scrub of a healthy store: %v", err)
	}
	if !rep.Sharded || rep.Shards != 3 {
		t.Fatalf("scrub flavor: sharded=%v shards=%d", rep.Sharded, rep.Shards)
	}
	if rep.Elements != 3100 {
		t.Fatalf("scrub counted %d elements, want 3100", rep.Elements)
	}
	if len(rep.Chunks) == 0 || rep.LivePages <= rep.ManifestPages {
		t.Fatalf("scrub accounting: %d chunks, %d live pages (%d manifest)",
			len(rep.Chunks), rep.LivePages, rep.ManifestPages)
	}
	if !rep.Supers[0].Valid && !rep.Supers[1].Valid {
		t.Fatal("scrub found no valid superblock on a committed store")
	}

	// Corrupt one live chunk page: the scrub must fail, naming neither
	// flavor valid nor loading garbage.
	sup, ok, err := pager.ReadSuper(dev)
	if err != nil || !ok {
		t.Fatalf("no superblock: %v", err)
	}
	m, mchain, err := loadShardManifest(pager.NewStore(dev), sup.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	_ = mchain
	victim := pager.PageID(m.Shards[1].Chunks[0])
	buf := make([]byte, pager.PageSize)
	if err := dev.Read(victim, buf); err != nil {
		t.Fatal(err)
	}
	buf[pager.PageSize/2] ^= 0xFF
	if err := dev.Write(victim, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Scrub[int, int](dev); err == nil {
		t.Fatal("scrub passed a store with a corrupted chunk page")
	}
}

// TestScrubSingleTree verifies the auditor recognizes a plain Durable
// store's gob manifest.
func TestScrubSingleTree(t *testing.T) {
	mem := wal.NewMemFS()
	dev := pager.NewDisk()
	d, err := OpenDurable[int, int](mem, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoCheckpoint(false)
	for i := 0; i < 500; i++ {
		if err := d.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub[int, int](dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sharded || rep.Shards != 1 {
		t.Fatalf("scrub flavor: sharded=%v shards=%d", rep.Sharded, rep.Shards)
	}
	if rep.Elements != 500 {
		t.Fatalf("scrub counted %d elements, want 500", rep.Elements)
	}
}

// TestScrubEmptyDevice verifies the auditor reports a store with no
// committed checkpoint as an error, with both slots marked invalid.
func TestScrubEmptyDevice(t *testing.T) {
	rep, err := Scrub[int, int](pager.NewDisk())
	if err == nil {
		t.Fatal("scrub of an empty device reported success")
	}
	if rep.Supers[0].Valid || rep.Supers[1].Valid {
		t.Fatalf("empty device has a valid superblock: %+v", rep.Supers)
	}
}
