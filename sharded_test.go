package fitingtree_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"fitingtree"
)

// buildSharded bulk-loads a tree with val == key and splits it into a
// sharded facade with the given target shard count and flush threshold.
func buildSharded(t testing.TB, keys []uint64, shards, flushAt int) *fitingtree.Sharded[uint64, uint64] {
	t.Helper()
	tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fitingtree.NewSharded(tr, shards)
	if err != nil {
		t.Fatal(err)
	}
	if flushAt > 0 {
		s.SetFlushEvery(flushAt)
	}
	return s
}

func seqKeys(n int, stride uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * stride
	}
	return keys
}

func TestShardedBasic(t *testing.T) {
	keys := seqKeys(4000, 3)
	s := buildSharded(t, keys, 4, 64)

	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	if b := s.Bounds(); len(b) != s.Shards()-1 {
		t.Fatalf("Bounds len %d, shards %d", len(b), s.Shards())
	}
	sizes := s.ShardSizes()
	total := 0
	for i, sz := range sizes {
		if sz == 0 {
			t.Fatalf("shard %d empty at construction", i)
		}
		total += sz
	}
	if total != len(keys) || s.Len() != len(keys) {
		t.Fatalf("sizes sum %d, Len %d, want %d", total, s.Len(), len(keys))
	}
	for _, k := range keys {
		if v, ok := s.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if s.Contains(1) {
		t.Fatal("Contains(1) on multiples of 3")
	}

	// Writes across every shard, crossing flush boundaries.
	for i := 0; i < 2000; i++ {
		s.Insert(uint64(i*6+1), uint64(i*6+1))
	}
	for i := 0; i < 1000; i++ {
		if !s.Delete(uint64(i * 3 * 4)) {
			t.Fatalf("Delete(%d) missed", i*12)
		}
	}
	if s.Delete(2) {
		t.Fatal("Delete(2) of absent key succeeded")
	}
	want := len(keys) + 2000 - 1000
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	for i := 0; i < 2000; i++ {
		k := uint64(i*6 + 1)
		if v, ok := s.Lookup(k); !ok || v != k {
			t.Fatalf("Lookup(%d) after churn = %d, %v", k, v, ok)
		}
	}
	if v := s.Version(); v%2 != 0 {
		t.Fatalf("version %d odd at rest", v)
	}
	st := s.Stats()
	if st.Elements != want {
		t.Fatalf("Stats.Elements = %d, want %d", st.Elements, want)
	}
	if st.Pages == 0 || st.IndexSize == 0 {
		t.Fatalf("degenerate aggregate stats: %+v", st)
	}
}

func TestShardedShardCountClamps(t *testing.T) {
	if _, err := fitingtree.NewSharded(mustTree(t, seqKeys(100, 1)), 0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	// Tiny data cannot support many shards; the facade clamps rather than
	// creating empty ranges.
	s, err := fitingtree.NewSharded(mustTree(t, seqKeys(10, 1)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shards(); got < 1 || got > 10 {
		t.Fatalf("Shards = %d for 10 elements", got)
	}
	// Empty start: one shard, everything still works.
	s, err = fitingtree.NewSharded(mustTree(t, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 1 || s.Len() != 0 {
		t.Fatalf("empty facade: shards %d len %d", s.Shards(), s.Len())
	}
	for i := 0; i < 100; i++ {
		s.Insert(uint64(i), uint64(i))
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func mustTree(t *testing.T, keys []uint64) *fitingtree.Tree[uint64, uint64] {
	t.Helper()
	tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShardedMatchesOptimistic drives identical workloads (val == key, so
// flush-timing differences cannot surface) through a sharded and an
// unsharded facade and requires byte-identical scans, lookups, batch
// lookups, and snapshots — the cross-shard stitch must be indistinguishable
// from a single Optimistic.
func TestShardedMatchesOptimistic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := make([]uint64, 6000)
	for i := range base {
		base[i] = uint64(rng.Intn(3000) * 4) // duplicates galore
	}
	sortU64(base)
	s := buildSharded(t, base, 5, 32)
	o := buildOpt(t, base, 77) // deliberately different flush cadence

	for round := 0; round < 3; round++ {
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(13000))
			switch rng.Intn(4) {
			case 0:
				if s.Delete(k) != o.Delete(k) {
					t.Fatalf("Delete(%d) outcome diverged", k)
				}
			default:
				s.Insert(k, k)
				o.Insert(k, k)
			}
		}
		if s.Len() != o.Len() {
			t.Fatalf("Len %d != %d", s.Len(), o.Len())
		}

		// Full-range and boundary-crossing scans must stitch identically.
		ranges := [][2]uint64{{0, 1 << 62}}
		for _, b := range s.Bounds() {
			lo := uint64(0)
			if b > 100 {
				lo = b - 100
			}
			ranges = append(ranges, [2]uint64{lo, b + 100})
		}
		for _, r := range ranges {
			var got, want [][2]uint64
			s.AscendRange(r[0], r[1], func(k, v uint64) bool {
				got = append(got, [2]uint64{k, v})
				return true
			})
			o.AscendRange(r[0], r[1], func(k, v uint64) bool {
				want = append(want, [2]uint64{k, v})
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("range [%d,%d]: %d elements vs %d", r[0], r[1], len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("range [%d,%d] diverges at %d: %v vs %v", r[0], r[1], i, got[i], want[i])
				}
			}
		}

		// Early stop crossing a shard boundary.
		if len(s.Bounds()) > 0 {
			b := s.Bounds()[0]
			lo := uint64(0)
			if b > 200 {
				lo = b - 200
			}
			var got, want []uint64
			n := 0
			s.AscendRange(lo, 1<<62, func(k, v uint64) bool {
				got = append(got, k)
				n++
				return n < 50
			})
			n = 0
			o.AscendRange(lo, 1<<62, func(k, v uint64) bool {
				want = append(want, k)
				n++
				return n < 50
			})
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("early-stop stitch diverged:\n%v\n%v", got, want)
			}
		}

		// Point reads, Each, and batches agree.
		probe := make([]uint64, 512)
		for i := range probe {
			probe[i] = uint64(rng.Intn(13000))
		}
		sv, sf := s.LookupBatch(probe)
		ov, of := o.LookupBatch(probe)
		for i, k := range probe {
			if sf[i] != of[i] || (sf[i] && sv[i] != ov[i]) {
				t.Fatalf("LookupBatch(%d) = (%d,%v) vs (%d,%v)", k, sv[i], sf[i], ov[i], of[i])
			}
			gv, gok := s.Lookup(k)
			wv, wok := o.Lookup(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("Lookup(%d) = (%d,%v) vs (%d,%v)", k, gv, gok, wv, wok)
			}
			var gn, wn int
			s.Each(k, func(uint64) bool { gn++; return true })
			o.Each(k, func(uint64) bool { wn++; return true })
			if gn != wn {
				t.Fatalf("Each(%d) count %d vs %d", k, gn, wn)
			}
		}

		// Snapshots are byte-identical: the sharded stream is
		// indistinguishable from the unsharded one.
		var sb, ob bytes.Buffer
		if err := fitingtree.EncodeSharded(s, &sb); err != nil {
			t.Fatal(err)
		}
		if err := fitingtree.EncodeOptimistic(o, &ob); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), ob.Bytes()) {
			t.Fatalf("round %d: EncodeSharded and EncodeOptimistic differ (%d vs %d bytes)",
				round, sb.Len(), ob.Len())
		}
	}
}

func TestShardedDuplicatesAtBoundary(t *testing.T) {
	// Plant a heavy duplicate run and verify it never splits across
	// shards: all matches come back from one Each, and deletes drain it
	// with Optimistic's ordering.
	var keys []uint64
	for i := 0; i < 2000; i++ {
		keys = append(keys, uint64(i*2))
	}
	dup := uint64(1999) // between base keys
	for i := 0; i < 64; i++ {
		keys = append(keys, dup)
	}
	sortU64(keys)
	s := buildSharded(t, keys, 6, 16)

	count := func() int {
		n := 0
		s.Each(dup, func(v uint64) bool {
			if v != dup {
				t.Fatalf("Each(%d) yielded %d", dup, v)
			}
			n++
			return true
		})
		return n
	}
	if got := count(); got != 64 {
		t.Fatalf("count = %d, want 64", got)
	}
	s.Insert(dup, dup)
	for want := 64; want >= 0; want-- {
		if !s.Delete(dup) {
			t.Fatalf("Delete missed at multiplicity %d", want+1)
		}
		if got := count(); got != want {
			t.Fatalf("count = %d, want %d", got, want)
		}
	}
	if s.Delete(dup) {
		t.Fatal("Delete on exhausted key succeeded")
	}
}

func TestShardedRebalance(t *testing.T) {
	keys := seqKeys(4000, 10)
	s := buildSharded(t, keys, 4, 32)
	s.SetRebalanceFactor(2)
	v0 := s.Version()

	// Hammer one narrow range: the owning shard balloons until the skew
	// check re-partitions.
	hot := keys[len(keys)-1] / 8 // inside shard 0
	for i := 0; i < 12000; i++ {
		s.Insert(hot+uint64(i%97), hot+uint64(i%97))
	}
	sizes := s.ShardSizes()
	total, maxSize := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > maxSize {
			maxSize = sz
		}
	}
	if total != s.Len() || total != 16000 {
		t.Fatalf("sizes sum %d, Len %d, want 16000", total, s.Len())
	}
	mean := float64(total) / float64(len(sizes))
	// Without rebalancing, the hot shard would hold 12000+1000 of 16000 —
	// 3.25× the mean of a 4-way split. The factor-2 trigger must have
	// fired and spread the load.
	if float64(maxSize) > 2.5*mean {
		t.Fatalf("rebalance never fired: sizes %v", sizes)
	}
	if s.Version() <= v0 {
		t.Fatalf("Version did not advance across rebalance: %d -> %d", v0, s.Version())
	}
	if v := s.Version(); v%2 != 0 {
		t.Fatalf("version %d odd at rest", v)
	}

	// Nothing was lost or duplicated.
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("base key %d lost in rebalance", k)
		}
	}
	n := 0
	s.AscendRange(0, 1<<62, func(k, v uint64) bool {
		if v != k {
			t.Fatalf("scan yielded (%d,%d)", k, v)
		}
		n++
		return true
	})
	if n != 16000 {
		t.Fatalf("scan visited %d, want 16000", n)
	}

	// A disabled factor never rebalances.
	s2 := buildSharded(t, keys, 4, 32)
	s2.SetRebalanceFactor(math.Inf(1))
	b0 := fmt.Sprint(s2.Bounds())
	for i := 0; i < 12000; i++ {
		s2.Insert(hot+uint64(i%97), hot+uint64(i%97))
	}
	if got := fmt.Sprint(s2.Bounds()); got != b0 {
		t.Fatalf("bounds moved with rebalancing disabled: %s -> %s", b0, got)
	}
}

func TestShardedGrowsFromEmpty(t *testing.T) {
	s, err := fitingtree.NewSharded(mustTree(t, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFlushEvery(16)
	if s.Shards() != 1 {
		t.Fatalf("empty facade starts with %d shards", s.Shards())
	}
	for i := 0; i < 5000; i++ {
		s.Insert(uint64(i*7), uint64(i*7))
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards = %d after growth, want 4", got)
	}
	for i := 0; i < 5000; i++ {
		if v, ok := s.Lookup(uint64(i * 7)); !ok || v != uint64(i*7) {
			t.Fatalf("Lookup(%d) = %d,%v after growth", i*7, v, ok)
		}
	}
}

func TestShardedEncodeDecode(t *testing.T) {
	keys := seqKeys(3000, 5)
	s := buildSharded(t, keys, 4, 16)
	for i := 0; i < 500; i++ {
		s.Insert(uint64(i*30+2), uint64(i*30+2)) // leaves pending deltas too
	}
	s.Delete(0)

	var buf bytes.Buffer
	if err := fitingtree.EncodeSharded(s, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// All three decoders accept the stream.
	s2, err := fitingtree.DecodeSharded[uint64, uint64](bytes.NewReader(blob), 4)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := fitingtree.DecodeOptimistic[uint64, uint64](bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := fitingtree.Decode[uint64, uint64](bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	want := s.Len()
	if s2.Len() != want || o2.Len() != want || t2.Len() != want {
		t.Fatalf("decoded lens %d/%d/%d, want %d", s2.Len(), o2.Len(), t2.Len(), want)
	}
	var a, b []uint64
	s.AscendRange(0, 1<<62, func(k, v uint64) bool { a = append(a, k, v); return true })
	s2.AscendRange(0, 1<<62, func(k, v uint64) bool { b = append(b, k, v); return true })
	if len(a) != len(b) {
		t.Fatalf("round-trip scan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip diverges at %d", i)
		}
	}

	// And DecodeSharded accepts plain Encode streams.
	var tb bytes.Buffer
	if err := fitingtree.Encode(mustTree(t, keys), &tb); err != nil {
		t.Fatal(err)
	}
	s3, err := fitingtree.DecodeSharded[uint64, uint64](&tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != len(keys) {
		t.Fatalf("DecodeSharded of Encode stream: Len %d, want %d", s3.Len(), len(keys))
	}
}

func TestShardedNaNPanics(t *testing.T) {
	tr, err := fitingtree.BulkLoad([]float64{1, 2, 3}, []int{1, 2, 3}, fitingtree.Options{Error: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fitingtree.NewSharded(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "Sharded.Insert", func() { s.Insert(math.NaN(), 9) })
	expectPanic(t, "Sharded.Delete", func() { s.Delete(math.NaN()) })
	// Reads must stay safe (and simply miss) on NaN.
	if _, ok := s.Lookup(math.NaN()); ok {
		t.Fatal("Lookup(NaN) found something")
	}
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestShardedModelRandomized drives interleaved Insert/Delete (val == key)
// through a sharded facade against a multiset model, exercising per-shard
// flushes and rebalances, and checks counts, membership, and global scan
// order after every phase.
func TestShardedModelRandomized(t *testing.T) {
	for _, cfg := range []struct {
		shards, flushAt int
		factor          float64
	}{
		{1, 1, 3},
		{3, 1, 2},
		{4, 7, 3},
		{5, 1 << 20, 2},
	} {
		rng := rand.New(rand.NewSource(int64(cfg.shards*1000 + cfg.flushAt)))
		base := make([]uint64, 3000)
		for i := range base {
			base[i] = uint64(rng.Intn(800) * 5)
		}
		sortU64(base)
		s := buildSharded(t, base, cfg.shards, cfg.flushAt)
		s.SetRebalanceFactor(cfg.factor)

		model := map[uint64]int{}
		for _, k := range base {
			model[k]++
		}
		total := len(base)

		for phase := 0; phase < 5; phase++ {
			for i := 0; i < 800; i++ {
				k := uint64(rng.Intn(4200))
				if rng.Intn(3) == 0 {
					got := s.Delete(k)
					want := model[k] > 0
					if got != want {
						t.Fatalf("cfg=%+v Delete(%d) = %v, model %v", cfg, k, got, want)
					}
					if want {
						model[k]--
						total--
					}
				} else {
					s.Insert(k, k)
					model[k]++
					total++
				}
			}
			if s.Len() != total {
				t.Fatalf("cfg=%+v phase %d: Len %d, model %d", cfg, phase, s.Len(), total)
			}
			// Global scan: key sequence must be the model's sorted multiset.
			var got []uint64
			s.AscendRange(0, 1<<62, func(k, v uint64) bool {
				if v != k {
					t.Fatalf("cfg=%+v scan yielded (%d,%d)", cfg, k, v)
				}
				got = append(got, k)
				return true
			})
			if len(got) != total {
				t.Fatalf("cfg=%+v phase %d: scan %d, model %d", cfg, phase, len(got), total)
			}
			seen := map[uint64]int{}
			for i, k := range got {
				if i > 0 && got[i-1] > k {
					t.Fatalf("cfg=%+v: scan out of order at %d", cfg, i)
				}
				seen[k]++
			}
			for k, n := range model {
				if n != seen[k] {
					t.Fatalf("cfg=%+v phase %d: key %d count %d, model %d", cfg, phase, k, seen[k], n)
				}
			}
			// Sampled point ops through every read path.
			probe := make([]uint64, 300)
			for i := range probe {
				probe[i] = uint64(rng.Intn(4200))
			}
			bv, bf := s.LookupBatch(probe)
			for i, k := range probe {
				if want := model[k] > 0; bf[i] != want || s.Contains(k) != want {
					t.Fatalf("cfg=%+v: membership of %d: batch %v contains %v model %v",
						cfg, k, bf[i], s.Contains(k), want)
				}
				if bf[i] && bv[i] != k {
					t.Fatalf("cfg=%+v: batch value for %d is %d", cfg, k, bv[i])
				}
				n := 0
				s.Each(k, func(uint64) bool { n++; return true })
				if n != model[k] {
					t.Fatalf("cfg=%+v: Each(%d) count %d, model %d", cfg, k, n, model[k])
				}
			}
		}
	}
}

// TestShardedStress exercises concurrent writers on distinct key ranges,
// latch-free readers, snapshots, flush-threshold changes, and
// skew-triggered rebalances under the race detector, then verifies the
// final contents.
func TestShardedStress(t *testing.T) {
	const (
		writers   = 4
		perWriter = 3000
		span      = uint64(1 << 20)
	)
	base := make([]uint64, 8000)
	for i := range base {
		base[i] = uint64(i) * (span * writers / 8000)
	}
	s := buildSharded(t, base, writers, 64)
	s.SetRebalanceFactor(2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: point, range, and batch, constantly.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Int63n(int64(span * writers)))
				s.Lookup(k)
				s.Contains(k)
				if rng.Intn(10) == 0 {
					n := 0
					s.AscendRange(k, k+span/4, func(uint64, uint64) bool {
						n++
						return n < 200
					})
				}
				if rng.Intn(10) == 0 {
					probe := make([]uint64, 64)
					for i := range probe {
						probe[i] = uint64(rng.Int63n(int64(span * writers)))
					}
					s.LookupBatch(probe)
				}
			}
		}(int64(r))
	}
	// A snapshotter and a flush-threshold twiddler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				var buf bytes.Buffer
				if err := fitingtree.EncodeSharded(s, &buf); err != nil {
					t.Error(err)
					return
				}
			}
			s.SetFlushEvery(16 + i%64)
		}
	}()
	// Writers: each owns a key range; writer 0 is deliberately hot.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			lo := span * uint64(w)
			for i := 0; i < perWriter; i++ {
				k := lo + uint64(rng.Int63n(int64(span)))
				k = k*2 + 1 // odd: never collides with base keys
				s.Insert(k, k)
				if i%5 == 0 {
					s.Delete(k)
					s.Insert(k, k)
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	want := len(base) + writers*perWriter
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	n := 0
	last := uint64(0)
	s.AscendRange(0, 1<<63, func(k, v uint64) bool {
		if k < last {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		last = k
		if v != k {
			t.Fatalf("scan yielded (%d,%d)", k, v)
		}
		n++
		return true
	})
	if n != want {
		t.Fatalf("scan visited %d, want %d", n, want)
	}
	for _, k := range base {
		if !s.Contains(k) {
			t.Fatalf("base key %d lost", k)
		}
	}
}

// BenchmarkShardWrite measures aggregate insert throughput as writer
// goroutines grow, for a single Optimistic (every writer funnels through
// one mutex) against a Sharded facade with one shard per writer (writers
// on disjoint key ranges take disjoint locks). On a multi-core runner the
// sharded curve scales with writers; on one vCPU both read ~1×.
func BenchmarkShardWrite(b *testing.B) {
	const domain = uint64(1) << 40
	base := make([]uint64, 100_000)
	for i := range base {
		base[i] = uint64(i) * (domain / 100_000)
	}
	for _, writers := range []int{1, 2, 4} {
		genInserts := func(bn int) [][]uint64 {
			per := (bn + writers - 1) / writers
			ins := make([][]uint64, writers)
			span := domain / uint64(writers)
			for w := range ins {
				rng := rand.New(rand.NewSource(int64(w + 1)))
				ins[w] = make([]uint64, per)
				lo := span * uint64(w)
				for i := range ins[w] {
					ins[w][i] = lo + uint64(rng.Int63n(int64(span))) | 1
				}
			}
			return ins
		}
		run := func(b *testing.B, insert func(k, v uint64)) {
			ins := genInserts(b.N)
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(keys []uint64) {
					defer wg.Done()
					for _, k := range keys {
						insert(k, k)
					}
				}(ins[w])
			}
			wg.Wait()
		}
		b.Run(fmt.Sprintf("optimistic/writers=%d", writers), func(b *testing.B) {
			o := buildOptBench(b, base)
			run(b, o.Insert)
		})
		b.Run(fmt.Sprintf("sharded/writers=%d", writers), func(b *testing.B) {
			s := buildSharded(b, base, writers, fitingtree.DefaultFlushEvery)
			run(b, s.Insert)
		})
	}
}

func buildOptBench(b *testing.B, keys []uint64) *fitingtree.Optimistic[uint64, uint64] {
	b.Helper()
	tr, err := fitingtree.BulkLoad(keys, append([]uint64(nil), keys...), fitingtree.Options{Error: 32, BufferSize: 8})
	if err != nil {
		b.Fatal(err)
	}
	return fitingtree.NewOptimistic(tr)
}
