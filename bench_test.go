// Benchmarks mirroring the paper's evaluation, one per table/figure, at
// testing.B-friendly sizes. The full parameter sweeps with paper-style
// output live in cmd/fitbench; EXPERIMENTS.md maps each figure to both.
package fitingtree_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fitingtree"
	"fitingtree/internal/baseline"
	"fitingtree/internal/bench"
	"fitingtree/internal/btree"
	"fitingtree/internal/costmodel"
	"fitingtree/internal/diskindex"
	"fitingtree/internal/pager"
	"fitingtree/internal/segment"
	"fitingtree/internal/workload"
)

const benchN = 200_000

func benchKeys() []uint64 { return workload.Weblogs(benchN, 1) }

func benchVals(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i)
	}
	return v
}

// BenchmarkTable1Segmentation measures the two segmentation algorithms of
// Table 1 and reports the segment counts they produce.
func BenchmarkTable1Segmentation(b *testing.B) {
	keys := workload.Weblogs(20_000, 1)
	b.Run("shrinkingcone", func(b *testing.B) {
		segs := 0
		for i := 0; i < b.N; i++ {
			segs = len(segment.ShrinkingCone(keys, 100))
		}
		b.ReportMetric(float64(segs), "segments")
	})
	b.Run("optimal", func(b *testing.B) {
		segs := 0
		for i := 0; i < b.N; i++ {
			segs = segment.OptimalCount(keys, 100)
		}
		b.ReportMetric(float64(segs), "segments")
	})
}

// BenchmarkFig6Lookup measures point-lookup latency for every approach of
// Figure 6 on the Weblogs dataset and reports each index's size.
func BenchmarkFig6Lookup(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	probes := bench.Probes(keys, 1<<16, 2)
	mask := len(probes) - 1

	for _, e := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("fiting/e=%d", e), func(b *testing.B) {
			t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(t.Stats().IndexSize), "index-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(probes[i&mask])
			}
		})
	}
	for _, ps := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("fixed/page=%d", ps), func(b *testing.B) {
			f, err := baseline.NewFixed(keys, vals, ps, btree.DefaultOrder)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(f.SizeBytes()), "index-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Lookup(probes[i&mask])
			}
		})
	}
	b.Run("full", func(b *testing.B) {
		f, err := baseline.NewFull(keys, vals, btree.DefaultOrder)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.SizeBytes()), "index-bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Lookup(probes[i&mask])
		}
	})
	b.Run("binary", func(b *testing.B) {
		f, err := baseline.NewBinarySearch(keys, vals)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Lookup(probes[i&mask])
		}
	})
}

// BenchmarkFig7Insert measures insert throughput for the three approaches
// of Figure 7 at error/page 100.
func BenchmarkFig7Insert(b *testing.B) {
	keys := benchKeys()
	bulk, inserts := bench.SplitForInserts(keys, 0.2, 3)
	vals := benchVals(len(bulk))
	const e = 100

	b.Run("fiting", func(b *testing.B) {
		t, err := fitingtree.BulkLoad(bulk, vals, fitingtree.Options{Error: e, BufferSize: e / 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Insert(inserts[i%len(inserts)], 0)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		f, err := baseline.NewFixed(bulk, vals, e, btree.DefaultOrder)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Insert(inserts[i%len(inserts)], 0)
		}
	})
	b.Run("full", func(b *testing.B) {
		f, err := baseline.NewFull(bulk, vals, btree.DefaultOrder)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Insert(inserts[i%len(inserts)], 0)
		}
	})
}

// BenchmarkFig8NonLinearity measures the non-linearity ratio computation
// (one ShrinkingCone pass) and reports the ratio at the IoT bump scale.
func BenchmarkFig8NonLinearity(b *testing.B) {
	keys := workload.IoT(100_000, 1)
	scale := 100_000 / workload.IoTSpanDays
	r := 0.0
	for i := 0; i < b.N; i++ {
		r = workload.NonLinearityRatio(keys, scale)
	}
	b.ReportMetric(r, "ratio")
}

// BenchmarkFig9WorstCase measures bulk loading the worst-case step dataset
// and reports the page counts on either side of the Figure 9 crossover.
func BenchmarkFig9WorstCase(b *testing.B) {
	keys := workload.Step(100_000, 100, 100)
	vals := benchVals(len(keys))
	for _, e := range []int{10, 100} {
		b.Run(fmt.Sprintf("e=%d", e), func(b *testing.B) {
			pages := 0
			for i := 0; i < b.N; i++ {
				t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e, BufferSize: 0})
				if err != nil {
					b.Fatal(err)
				}
				pages = t.Stats().Pages
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
}

// BenchmarkFig10CostModel measures tuned-index lookups and reports the
// model's prediction next to them (Figure 10a's two curves).
func BenchmarkFig10CostModel(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	const e = 1000
	m, err := costmodel.Learn(keys, []int{10, 100, 1000, 10000}, 50, btree.DefaultOrder, 0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e, BufferSize: e / 2, FillFactor: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	probes := bench.Probes(keys, 1<<16, 4)
	mask := len(probes) - 1
	b.ReportMetric(m.Latency(e), "predicted-ns")
	b.ReportMetric(float64(m.Size(e)), "predicted-bytes")
	b.ReportMetric(float64(t.Stats().IndexSize), "actual-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(probes[i&mask])
	}
}

// BenchmarkFig11Scalability measures lookups as the dataset scales with
// trends preserved (error = page = 100).
func BenchmarkFig11Scalability(b *testing.B) {
	for _, sf := range []int{1, 4} {
		n := 50_000 * sf
		keys := workload.Weblogs(n, 1)
		vals := benchVals(n)
		probes := bench.Probes(keys, 1<<15, 5)
		mask := len(probes) - 1
		b.Run(fmt.Sprintf("x%d", sf), func(b *testing.B) {
			t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(probes[i&mask])
			}
		})
	}
}

// BenchmarkFig12BufferSize measures insert throughput across buffer sizes
// at a large error threshold.
func BenchmarkFig12BufferSize(b *testing.B) {
	keys := benchKeys()
	bulk, inserts := bench.SplitForInserts(keys, 0.2, 6)
	vals := benchVals(len(bulk))
	const e = 20_000
	for _, bu := range []int{10, 1_000, 10_000} {
		b.Run(fmt.Sprintf("buf=%d", bu), func(b *testing.B) {
			t, err := fitingtree.BulkLoad(bulk, vals, fitingtree.Options{Error: e, BufferSize: bu})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Insert(inserts[i%len(inserts)], 0)
			}
		})
	}
}

// BenchmarkFig13Breakdown measures instrumented lookups and reports the
// tree-phase share of lookup time.
func BenchmarkFig13Breakdown(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		b.Fatal(err)
	}
	probes := bench.Probes(keys, 1<<15, 7)
	mask := len(probes) - 1
	var treeNs, pageNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, tn, pn := t.LookupBreakdown(probes[i&mask])
		treeNs += tn
		pageNs += pn
	}
	if treeNs+pageNs > 0 {
		b.ReportMetric(100*float64(treeNs)/float64(treeNs+pageNs), "tree-%")
	}
}

// BenchmarkBulkLoad measures end-to-end index construction (segmentation +
// page build + inner tree bulk load).
func BenchmarkBulkLoad(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeScan measures 1000-element range scans.
func BenchmarkRangeScan(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := keys[(i*4099)%(len(keys)-2000)]
		n := 0
		t.AscendRange(lo, keys[len(keys)-1], func(k, v uint64) bool {
			n++
			return n < 1000
		})
	}
}

// BenchmarkSearchStrategies is the Section 4.1.2 ablation: in-segment
// search algorithm at a small and a large error threshold.
func BenchmarkSearchStrategies(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	probes := bench.Probes(keys, 1<<15, 8)
	mask := len(probes) - 1
	for _, e := range []int{10, 1000} {
		for _, s := range []struct {
			name  string
			strat fitingtree.SearchStrategy
		}{
			{"binary", fitingtree.SearchBinary},
			{"linear", fitingtree.SearchLinear},
			{"exponential", fitingtree.SearchExponential},
		} {
			b.Run(fmt.Sprintf("e=%d/%s", e, s.name), func(b *testing.B) {
				t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: e, Search: s.strat})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.Lookup(probes[i&mask])
				}
			})
		}
	}
}

// BenchmarkRouters is the Section 2.2 ablation: B+ tree vs implicit
// (Eytzinger) segment router.
func BenchmarkRouters(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	probes := bench.Probes(keys, 1<<15, 9)
	mask := len(probes) - 1
	for _, r := range []struct {
		name string
		kind fitingtree.RouterKind
	}{
		{"btree", fitingtree.RouterBTree},
		{"implicit", fitingtree.RouterImplicit},
	} {
		b.Run(r.name, func(b *testing.B) {
			t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100, Router: r.kind})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(t.Stats().IndexSize), "index-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(probes[i&mask])
			}
		})
	}
}

// BenchmarkParallelLookup measures aggregate point-lookup throughput at
// 1/2/4/8 reader goroutines for the two concurrency facades, with the bare
// tree as the no-synchronization baseline. ns/op is aggregate wall time
// for b.N lookups spread across the goroutines, so a facade that scales
// shows shrinking ns/op as goroutines grow (given GOMAXPROCS > 1); the
// RWMutex facade instead serializes on the lock word.
func BenchmarkParallelLookup(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	probes := bench.Probes(keys, 1<<16, 11)
	mask := len(probes) - 1
	build := func(b *testing.B) *fitingtree.Tree[uint64, uint64] {
		t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	run := func(b *testing.B, lookup func(uint64) (uint64, bool), goroutines int) {
		var wg sync.WaitGroup
		per := b.N/goroutines + 1
		b.ResetTimer()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				i := off * 7919
				for n := 0; n < per; n++ {
					lookup(probes[i&mask])
					i++
				}
			}(g)
		}
		wg.Wait()
	}

	b.Run("tree/goroutines=1", func(b *testing.B) {
		t := build(b)
		run(b, t.Lookup, 1)
	})
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rwmutex/goroutines=%d", g), func(b *testing.B) {
			c := fitingtree.NewConcurrent(build(b))
			run(b, c.Lookup, g)
		})
	}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("optimistic/goroutines=%d", g), func(b *testing.B) {
			o := fitingtree.NewOptimistic(build(b))
			run(b, o.Lookup, g)
		})
	}
}

// BenchmarkParallelLookupCPU is the testing-native variant of
// BenchmarkParallelLookup: b.RunParallel spawns GOMAXPROCS goroutines, so
// `go test -bench ParallelLookupCPU -cpu 1,2,4,8` sweeps the parallelism
// levels with the scheduler actually granting that many cores.
func BenchmarkParallelLookupCPU(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	probes := bench.Probes(keys, 1<<16, 13)
	mask := len(probes) - 1
	build := func(b *testing.B) *fitingtree.Tree[uint64, uint64] {
		t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	var worker atomic.Int64
	run := func(b *testing.B, lookup func(uint64) (uint64, bool)) {
		b.RunParallel(func(pb *testing.PB) {
			i := int(worker.Add(1)) * 7919
			for pb.Next() {
				lookup(probes[i&mask])
				i++
			}
		})
	}
	b.Run("rwmutex", func(b *testing.B) {
		c := fitingtree.NewConcurrent(build(b))
		run(b, c.Lookup)
	})
	b.Run("optimistic", func(b *testing.B) {
		o := fitingtree.NewOptimistic(build(b))
		run(b, o.Lookup)
	})
}

// BenchmarkLookupBatch compares batched lookups (sorted probe order, one
// router descent per page run) against the same probes issued one by one.
func BenchmarkLookupBatch(b *testing.B) {
	keys := benchKeys()
	vals := benchVals(len(keys))
	t, err := fitingtree.BulkLoad(keys, vals, fitingtree.Options{Error: 100})
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 1024
	probes := bench.Probes(keys, batchSize, 12)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Lookup(probes[i%batchSize])
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i += batchSize {
			t.LookupBatch(probes)
		}
	})
	sorted := append([]uint64(nil), probes...)
	sortU64(sorted)
	b.Run("batch-presorted", func(b *testing.B) {
		for i := 0; i < b.N; i += batchSize {
			t.LookupBatch(sorted)
		}
	})
}

// BenchmarkExtIOPageReads measures disk-backed lookups through the buffer
// pool and reports page reads per operation.
func BenchmarkExtIOPageReads(b *testing.B) {
	keys := workload.Weblogs(100_000, 1)
	pool := pager.NewPool(pager.NewDisk(), 64)
	col, err := diskindex.StoreColumn(pool, keys)
	if err != nil {
		b.Fatal(err)
	}
	ft, err := diskindex.NewFITing(col, 100, keys)
	if err != nil {
		b.Fatal(err)
	}
	probes := bench.Probes(keys, 1<<14, 10)
	mask := len(probes) - 1
	pool.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.Lookup(probes[i&mask]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := pool.Stats()
	if st.Hits+st.Misses > 0 {
		b.ReportMetric(float64(st.Misses)/float64(b.N), "reads/op")
	}
}
