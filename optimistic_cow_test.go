package fitingtree

// White-box tests for the copy-on-write flush: they reach into the
// facade's published states to verify page sharing and snapshot encoding,
// which the black-box suite (package fitingtree_test) cannot see.

import (
	"bytes"
	"testing"

	"fitingtree/internal/workload"
)

// TestOptimisticFlushSharesPages pins the COW contract at the facade
// level: after a flush triggered by a small clustered delta, the newly
// published state's tree shares (by identity) almost every page with the
// previously published state's tree.
func TestOptimisticFlushSharesPages(t *testing.T) {
	keys := workload.Weblogs(200_000, 3)
	vals := make([]uint64, len(keys))
	tr, err := BulkLoad(keys, vals, Options{Error: 32, BufferSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetAsyncFlush(true) // pin the pipeline's sharing, whatever GOMAXPROCS says
	o.SetFlushEvery(8)

	before := o.state.Load().tree
	beforeIDs := map[uint64]bool{}
	for _, id := range before.PageIDs() {
		beforeIDs[id] = true
	}
	beforeChunks := map[uint64]bool{}
	for _, id := range before.ChunkIDs() {
		beforeChunks[id] = true
	}

	// Seven writes stay in the delta; the eighth trips the flush — under
	// the async pipeline that freezes the delta and hands it to the
	// background flusher, so quiesce before inspecting the published
	// tree. Keys cluster around one spot so the dirty region is narrow.
	at := keys[100_000]
	for i := uint64(0); i < 8; i++ {
		o.Insert(at+i, i)
	}
	o.SyncFlush()
	after := o.state.Load().tree
	if after == before {
		t.Fatal("flush did not publish a new tree")
	}
	if st := o.state.Load(); st.delta != nil || st.frozen != nil {
		t.Fatal("a delta survived the flush")
	}

	total, shared, fresh := 0, 0, 0
	for _, id := range after.PageIDs() {
		total++
		if beforeIDs[id] {
			shared++
		} else {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no pages rebuilt by flush")
	}
	if fresh > 16 {
		t.Fatalf("clustered 8-write delta rebuilt %d of %d pages", fresh, total)
	}
	if shared < total-16 {
		t.Fatalf("only %d of %d pages shared across the flush", shared, total)
	}
	// Chain chunks share the same way: the narrow dirty interval re-cuts
	// at most its boundary chunks, every other chunk survives by identity.
	chunkTotal, chunkShared, chunkFresh := 0, 0, 0
	for _, id := range after.ChunkIDs() {
		chunkTotal++
		if beforeChunks[id] {
			chunkShared++
		} else {
			chunkFresh++
		}
	}
	if chunkFresh == 0 {
		t.Fatal("no chunks re-cut by flush")
	}
	if chunkFresh > 3 {
		t.Fatalf("clustered 8-write delta re-cut %d of %d chunks", chunkFresh, chunkTotal)
	}
	if chunkShared < chunkTotal-3 {
		t.Fatalf("only %d of %d chunks shared across the flush", chunkShared, chunkTotal)
	}
	if err := after.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := before.CheckInvariants(); err != nil {
		t.Fatalf("pre-flush tree corrupted by flush: %v", err)
	}
}

// TestOptimisticSnapshotRoundTrip covers EncodeOptimistic/DecodeOptimistic
// including a state with a non-empty delta (pending inserts AND pending
// tombstones), and cross-decoding with the bare-Tree Decode.
func TestOptimisticSnapshotRoundTrip(t *testing.T) {
	keys := []uint64{2, 4, 4, 6, 8, 10, 12}
	vals := []uint64{20, 40, 41, 60, 80, 100, 120}
	tr, err := BulkLoad(keys, vals, Options{Error: 16, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetFlushEvery(1 << 20) // keep everything in the delta

	o.Insert(5, 50)
	o.Insert(5, 51)
	o.Insert(13, 130)
	if !o.Delete(4) { // tombstones one base duplicate
		t.Fatal("Delete(4) missed")
	}
	if o.state.Load().delta == nil {
		t.Fatal("test needs a non-empty delta")
	}

	var buf bytes.Buffer
	if err := EncodeOptimistic(o, &buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	collect := func(e interface {
		AscendRange(lo, hi uint64, fn func(k, v uint64) bool)
	}) (ks, vs []uint64) {
		e.AscendRange(0, 1<<62, func(k, v uint64) bool {
			ks = append(ks, k)
			vs = append(vs, v)
			return true
		})
		return
	}
	wantK, wantV := collect(o)

	o2, err := DecodeOptimistic[uint64, uint64](bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if o2.Len() != o.Len() {
		t.Fatalf("decoded Len = %d, want %d", o2.Len(), o.Len())
	}
	gotK, gotV := collect(o2)
	if len(gotK) != len(wantK) {
		t.Fatalf("decoded %d elements, want %d", len(gotK), len(wantK))
	}
	for i := range wantK {
		if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
			t.Fatalf("element %d = (%d,%d), want (%d,%d)", i, gotK[i], gotV[i], wantK[i], wantV[i])
		}
	}

	// The same stream is a valid bare-Tree snapshot.
	t2, err := Decode[uint64, uint64](bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if t2.Len() != o.Len() {
		t.Fatalf("bare decode Len = %d, want %d", t2.Len(), o.Len())
	}
	// And a bare-Tree snapshot decodes into a facade.
	buf.Reset()
	if err := Encode(t2, &buf); err != nil {
		t.Fatal(err)
	}
	o3, err := DecodeOptimistic[uint64, uint64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if o3.Len() != o.Len() {
		t.Fatalf("cross decode Len = %d, want %d", o3.Len(), o.Len())
	}
}

// TestOptimisticDeleteScanOrderPin pins the documented tombstone-count
// semantics: Delete consumes pending inserts newest-first, then tombstones
// base matches in scan order — the first N values Each would yield — and a
// flush preserves exactly that accounting.
func TestOptimisticDeleteScanOrderPin(t *testing.T) {
	// Error 2 forces tiny pages, so the duplicates of key 7 span pages.
	keys := []uint64{1, 3, 7, 7, 7, 7, 7, 7, 7, 7, 9, 11, 13, 15, 17, 19}
	vals := []uint64{0, 0, 100, 101, 102, 103, 104, 105, 106, 107, 0, 0, 0, 0, 0, 0}
	tr, err := BulkLoad(keys, vals, Options{Error: 2, BufferSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimistic(tr)
	o.SetFlushEvery(1 << 20)

	scan := func() (out []uint64) {
		o.Each(7, func(v uint64) bool { out = append(out, v); return true })
		return
	}
	base := scan()
	if len(base) != 8 {
		t.Fatalf("expected 8 duplicates of 7, got %d", len(base))
	}

	// A pending insert is consumed before any base match is tombstoned.
	o.Insert(7, 999)
	if !o.Delete(7) {
		t.Fatal("Delete missed")
	}
	if got := scan(); len(got) != 8 || got[0] != base[0] {
		t.Fatalf("pending insert not consumed first: %v", got)
	}

	// Three deletes tombstone the first three matches in scan order.
	for i := 0; i < 3; i++ {
		if !o.Delete(7) {
			t.Fatal("Delete missed")
		}
	}
	got := scan()
	if len(got) != 5 {
		t.Fatalf("%d survivors, want 5", len(got))
	}
	for i, v := range got {
		if v != base[3+i] {
			t.Fatalf("survivor %d = %d, want %d (first-3-in-scan-order must die)", i, v, base[3+i])
		}
	}

	// The COW flush applies the same accounting.
	o.SetFlushEvery(1)
	o.Insert(1000, 0) // trigger flush
	o.SyncFlush()     // quiesce the async pipeline before inspecting
	if st := o.state.Load(); st.delta != nil || st.frozen != nil {
		t.Fatal("a delta survived flush")
	}
	flushed := scan()
	if len(flushed) != len(got) {
		t.Fatalf("flush changed survivor count: %d != %d", len(flushed), len(got))
	}
	for i := range got {
		if flushed[i] != got[i] {
			t.Fatalf("flush changed survivor %d: %d != %d", i, flushed[i], got[i])
		}
	}
}
